// Scale-optimized PBFT baseline (§IX).
//
// Classic three-phase PBFT with all-to-all prepare/commit rounds and signed
// messages (following [31]: public-key signatures rather than MAC vectors,
// which is what the paper's "scale optimized PBFT" uses at f=64). Clients
// wait for f+1 matching replies. Checkpoints are the quadratic PBFT protocol.
// The view change carries prepared certificates and refills gaps with no-ops;
// certificate signatures ride on the simulator's authenticated channels (the
// baseline is evaluated for performance and crash faults, see DESIGN.md).
//
// The ordering engine sits on the same runtime::ReplicaRuntime as SBFT, so
// the baseline gets the identical execution pipeline, reply cache,
// checkpointing, WAL durability, crash recovery, and checkpoint-based state
// transfer — every crash/restart/disk-wipe harness scenario runs on both
// protocols through the same Cluster API. State-transfer certificates carry
// no pi threshold signature here (PBFT has no threshold keys); the snapshot
// is still verified against the certificate's state root, which is the
// crash-fault trust model the baseline is evaluated under.
//
// n = 3f + 1 (set c = 0 in the ProtocolConfig).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "kv/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/config.h"
#include "proto/message.h"
#include "recovery/wal.h"
#include "runtime/replica_runtime.h"
#include "sim/network.h"
#include "storage/ledger_storage.h"

namespace sbft::pbft {

/// Per-replica checkpoint signing (CheckpointSigShare). The scheme is an
/// HMAC over a per-replica key derived from a cluster secret — the simulation
/// stand-in for per-replica public-key signatures, enforced (like the
/// simulated-BLS threshold scheme) by capability discipline: honest code only
/// ever signs with its own id, and the fault-injected donor fabricates a
/// checkpoint precisely because it *cannot* forge the other 2f signatures.
class CheckpointAuth {
 public:
  explicit CheckpointAuth(Bytes cluster_secret)
      : secret_(std::move(cluster_secret)) {}

  Bytes sign(ReplicaId replica, SeqNum seq, const Digest& state_root) const;
  bool verify(ReplicaId replica, SeqNum seq, const Digest& state_root,
              ByteSpan sig) const;

 private:
  Bytes secret_;
};

struct PbftOptions {
  ProtocolConfig config;  // c must be 0
  ReplicaId id = 1;
  std::shared_ptr<storage::ILedgerStorage> ledger;  // optional persistence
  std::shared_ptr<recovery::IReplicaWal> wal;       // optional consensus WAL
  // Set when the replica is restarted into an already-running cluster: it
  // probes state transfer on boot in case its local log fell behind the
  // cluster's stable checkpoint (or the disk was lost entirely).
  bool recovering = false;
  // Fault injection: as a state-transfer donor, flip a byte in every chunk
  // payload served (fetchers must detect it by Merkle verification).
  bool corrupt_state_chunks = false;
  // Fault injection: as a state-transfer donor, answer probes with a
  // fabricated-but-root-consistent checkpoint ahead of the cluster. Without
  // verified checkpoint certificates a fetcher adopts it; with them
  // (ProtocolConfig::pbft_verify_checkpoint_certs) the manifest lacks the
  // f+1 valid CheckpointSigShares of a weak certificate and is rejected.
  bool fabricate_checkpoint = false;
  // Checkpoint signing/verification authority (shared per cluster). Null
  // disables checkpoint certificates entirely (unit setups).
  std::shared_ptr<const CheckpointAuth> checkpoint_auth;
  // Group reconfiguration (docs/reconfiguration.md): bootstrap roster; empty
  // derives the genesis roster (ids 1..n at nodes 0..n-1) from the config.
  std::vector<ReplicaInfo> roster;
  uint32_t roster_f = 0;
  uint32_t roster_c = 0;
  // Observability (docs/observability.md). Both optional: a null tracer
  // binds the shared no-op instance; a null registry gets a private one.
  std::shared_ptr<obs::Tracer> tracer;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // Cross-shard marker executor (docs/sharding.md). Not owned — the harness
  // keeps it alive across replica incarnations, like the ledger. Null for
  // single-group deployments.
  runtime::IMarkerExecutor* marker_executor = nullptr;
};

/// Protocol counters over the shared runtime counters (execution, WAL,
/// state transfer, reconfiguration live in the runtime::RuntimeStats base).
struct PbftStats : runtime::RuntimeStats {
  uint64_t view_changes = 0;
  // State-transfer manifests/replies rejected for missing or invalid quorum
  // checkpoint certificates (the malicious-donor defense).
  uint64_t checkpoint_certs_rejected = 0;
  // Primary: empty blocks proposed to drive an idle cluster across a pending
  // reconfiguration's activation checkpoint boundary.
  uint64_t noop_fill_blocks = 0;

  /// Visits every counter as (name, value) — runtime base first.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    runtime::RuntimeStats::for_each(fn);
    fn("view_changes", view_changes);
    fn("checkpoint_certs_rejected", checkpoint_certs_rejected);
    fn("noop_fill_blocks", noop_fill_blocks);
  }
};

class PbftReplica final : public sim::IActor {
 public:
  PbftReplica(PbftOptions options, std::unique_ptr<IService> service);

  void on_start(sim::ActorContext& ctx) override;
  void on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) override;
  void on_timer(uint64_t id, sim::ActorContext& ctx) override;

  ReplicaId id() const { return opts_.id; }
  ViewNum view() const { return view_; }
  SeqNum last_executed() const { return runtime_.last_executed(); }
  SeqNum last_stable() const { return runtime_.last_stable(); }
  const IService& service() const { return runtime_.service(); }
  const runtime::ReplicaRuntime& runtime() const { return runtime_; }
  /// Protocol stats merged with the runtime's protocol-agnostic stats.
  PbftStats stats() const;
  std::optional<Digest> committed_digest_of(SeqNum s) const;

 private:
  struct Slot {
    bool has_pp = false;
    ViewNum pp_view = 0;
    Digest h{};
    Digest block_digest{};
    std::optional<Block> block;
    std::set<ReplicaId> prepares;  // matching h
    std::set<ReplicaId> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
    sim::SimTime pp_time = 0;      // when the pre-prepare was accepted
    sim::SimTime commit_time = 0;  // when the commit quorum formed
  };

  void handle_client_request(NodeId from, const ClientRequestMsg& m,
                             sim::ActorContext& ctx);
  void handle_pre_prepare(NodeId from, const PrePrepareMsg& m, sim::ActorContext& ctx);
  void handle_prepare(const PbftPrepareMsg& m, sim::ActorContext& ctx);
  void handle_commit(const PbftCommitMsg& m, sim::ActorContext& ctx);
  void handle_checkpoint(const PbftCheckpointMsg& m, sim::ActorContext& ctx);
  /// Continuation of handle_checkpoint once the vote signature cost has been
  /// paid (possibly on a worker lane).
  void handle_checkpoint_verified(const PbftCheckpointMsg& m,
                                  sim::ActorContext& ctx);
  void handle_view_change(const PbftViewChangeMsg& m, sim::ActorContext& ctx);
  void handle_new_view(NodeId from, const PbftNewViewMsg& m, sim::ActorContext& ctx);
  void handle_state_transfer_request(NodeId from, const StateTransferRequestMsg& m,
                                     sim::ActorContext& ctx);
  void handle_state_transfer_reply(const StateTransferReplyMsg& m,
                                   sim::ActorContext& ctx);
  void handle_state_manifest(NodeId from, const StateManifestMsg& m,
                             sim::ActorContext& ctx);
  void handle_state_chunk_request(NodeId from, const StateChunkRequestMsg& m,
                                  sim::ActorContext& ctx);
  void handle_state_chunk(NodeId from, const StateChunkMsg& m,
                          sim::ActorContext& ctx);
  void handle_reconfig_block(const ReconfigBlockMsg& m, sim::ActorContext& ctx);

  // --- membership epochs (docs/reconfiguration.md) ---------------------------
  const runtime::MembershipEpoch& epoch() const {
    return runtime_.membership().active();
  }
  const runtime::MembershipEpoch& epoch_for_seq(SeqNum s) const {
    return runtime_.membership().epoch_for_seq(s);
  }
  NodeId node_of(ReplicaId r) const;
  /// Activation boundary no proposal/pre-prepare may cross (0: none).
  SeqNum reconfig_gate() const;
  /// Folds a pending epoch change into the engine (derived config, primary
  /// timer, retirement). Call after any runtime operation that can activate.
  void maybe_refresh_epoch(sim::ActorContext& ctx);

  // --- checkpoint certificates (CheckpointSigShare lists) --------------------
  /// Proof for the current shippable checkpoint: up to 2f+1 shares, served
  /// from f+1 up (the weak-certificate floor — a frontier executed by only
  /// an f+1-sized fragment never accrues 2f+1 matching votes); empty below
  /// that.
  std::vector<CheckpointSigShare> checkpoint_proof_for(
      const ExecCertificate& cert) const;
  /// Weak certificate: f+1 distinct members of the checkpoint's epoch, all
  /// verifying over (cert.seq, cert.state_root) — at least one honest
  /// voucher. Counts a rejection on failure.
  bool verify_checkpoint_proof(const ExecCertificate& cert,
                               const std::vector<CheckpointSigShare>& proof,
                               sim::ActorContext& ctx);
  /// Fabricated-donor fault: manifest for a bogus checkpoint ahead of the
  /// cluster (built lazily, served from fake_* below).
  std::optional<StateManifestMsg> fabricate_manifest(
      const StateTransferRequestMsg& probe, sim::ActorContext& ctx);

  bool is_primary() const { return epoch().primary_of(view_) == opts_.id; }
  void try_propose(sim::ActorContext& ctx, bool flush_partial = false);
  /// §VIII adaptive batch parameter, mirroring SBFT's controller: sizes the
  /// minimum block off an EWMA of the pending backlog (small blocks when
  /// idle for latency, full blocks under load for amortized fixed costs).
  /// Returns the static config.max_batch when adaptive_batching is off.
  uint32_t adaptive_batch_size() const;
  /// Continuation of handle_client_request once the request signature has
  /// been verified (possibly on a worker lane).
  /// Drains the marker executor after every message/timer: relays its queued
  /// sends and (primary only) enqueues staged 2PC decision markers for
  /// ordering (docs/sharding.md). No-op without an executor.
  void pump_marker_executor(sim::ActorContext& ctx);
  void admit_client_request(NodeId from, const Request& req,
                            sim::ActorContext& ctx);
  void accept_pre_prepare(SeqNum s, ViewNum v, Block block, sim::ActorContext& ctx);
  void check_prepared(SeqNum s, sim::ActorContext& ctx);
  void check_committed(SeqNum s, sim::ActorContext& ctx);
  void try_execute(sim::ActorContext& ctx);
  void start_view_change(ViewNum target, sim::ActorContext& ctx);
  void enter_new_view(const PbftNewViewMsg& m, sim::ActorContext& ctx);
  void recover_from_storage();
  void request_state_transfer(sim::ActorContext& ctx);
  bool state_transfer_behind() const;
  void send_chunk_requests(sim::ActorContext& ctx);
  void complete_chunked_transfer(sim::ActorContext& ctx);
  /// Broadcasts the state-transfer probe (delta base advertised; the cold
  /// chunk-hashing of the local snapshot is charged here).
  void broadcast_state_probe(sim::ActorContext& ctx);
  /// Arms the donor tick while the rate limiter has budget in use or deferred
  /// requests queued (re-served there instead of being dropped).
  void arm_donor_tick(sim::ActorContext& ctx);
  bool execution_gap() const;
  /// Highest sequence for which f+1 distinct checkpoint votes on one digest
  /// are on hand — proof some honest replica executed that far.
  SeqNum checkpoint_evidence_frontier() const;
  void broadcast(sim::ActorContext& ctx, MessagePtr msg);
  void arm_progress_timer(sim::ActorContext& ctx);
  SeqNum le() const { return runtime_.last_executed(); }
  SeqNum ls() const { return runtime_.last_stable(); }

  PbftOptions opts_;
  runtime::ReplicaRuntime runtime_;

  // Observability: bound once at construction; emit sites never null-check.
  obs::Tracer& trace_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* h_pp_to_commit_ = nullptr;
  obs::Histogram* h_commit_to_exec_ = nullptr;
  // Open view-change session span (0 = none); see the SBFT engine.
  ViewNum vc_span_ = 0;
  // State-transfer session span bookkeeping.
  uint64_t st_session_ = 0;
  bool st_span_open_ = false;

  // Derived from the active epoch (f patched into the protocol config).
  ProtocolConfig cfg_;
  // Set when an activated epoch no longer contains this replica: it drains —
  // serves state transfer and cached replies, but never votes or proposes.
  bool retired_ = false;
  // Pre-execution shadow of a reconfiguration activation boundary (see the
  // SBFT engine; authoritative once the marker executes).
  SeqNum shadow_gate_ = 0;

  ViewNum view_ = 0;
  bool in_view_change_ = false;
  ViewNum vc_target_ = 0;
  uint32_t vc_attempts_ = 0;
  SeqNum next_seq_ = 1;

  std::map<SeqNum, Slot> slots_;
  std::deque<Request> pending_;
  std::set<std::pair<ClientId, uint64_t>> pending_keys_;
  double avg_pending_ = 0;  // EWMA demand estimate for adaptive batching

  // Checkpoint votes: seq -> digest -> voter -> signature (CheckpointSigShare
  // material; sigs verified on arrival when checkpoint_auth is set). The
  // entry for the stable checkpoint is retained so the donor can ship a
  // certificate with its manifests.
  std::map<SeqNum, std::map<Digest, std::map<ReplicaId, Bytes>>> checkpoint_votes_;

  // The quorum certificate that vouched for the checkpoint this replica
  // adopted via state transfer: a fresh adopter has no checkpoint votes of
  // its own, so it re-serves this proof to later fetchers instead of being
  // an unusable donor until the next checkpoint forms. (In-memory only, like
  // the vote set — a restarted donor re-accumulates at the next checkpoint.)
  SeqNum adopted_proof_seq_ = 0;
  Digest adopted_proof_root_{};
  std::vector<CheckpointSigShare> adopted_proof_;

  // Fabricated-donor fault state (fabricate_checkpoint).
  Bytes fake_envelope_;
  std::unique_ptr<runtime::ChunkedSnapshot> fake_chunks_;
  ExecCertificate fake_cert_;

  std::map<ViewNum, std::map<ReplicaId, PbftViewChangeMsg>> vc_msgs_;
  bool new_view_sent_ = false;

  SeqNum progress_marker_ = 0;
  bool progress_timer_armed_ = false;
  bool forwarded_waiting_ = false;
  bool st_inflight_ = false;
  bool donor_tick_armed_ = false;

  // Votes persisted by a previous incarnation for slots still in flight:
  // seq -> (highest voted view, block digest). A recovered replica refuses to
  // accept a conflicting pre-prepare at or below that view.
  std::map<SeqNum, std::pair<ViewNum, Digest>> wal_votes_;
  uint64_t recovered_replay_bytes_ = 0;  // charged as boot-time replay CPU

  PbftStats stats_;  // protocol-level counters; runtime fields merged in stats()
};

}  // namespace sbft::pbft
