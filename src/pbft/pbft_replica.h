// Scale-optimized PBFT baseline (§IX).
//
// Classic three-phase PBFT with all-to-all prepare/commit rounds and signed
// messages (following [31]: public-key signatures rather than MAC vectors,
// which is what the paper's "scale optimized PBFT" uses at f=64). Clients
// wait for f+1 matching replies. Checkpoints are the quadratic PBFT protocol.
// The view change carries prepared certificates and refills gaps with no-ops;
// certificate signatures ride on the simulator's authenticated channels (the
// baseline is evaluated for performance and crash faults, see DESIGN.md).
//
// The ordering engine sits on the same runtime::ReplicaRuntime as SBFT, so
// the baseline gets the identical execution pipeline, reply cache,
// checkpointing, WAL durability, crash recovery, and checkpoint-based state
// transfer — every crash/restart/disk-wipe harness scenario runs on both
// protocols through the same Cluster API. State-transfer certificates carry
// no pi threshold signature here (PBFT has no threshold keys); the snapshot
// is still verified against the certificate's state root, which is the
// crash-fault trust model the baseline is evaluated under.
//
// n = 3f + 1 (set c = 0 in the ProtocolConfig).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "kv/service.h"
#include "proto/config.h"
#include "proto/message.h"
#include "recovery/wal.h"
#include "runtime/replica_runtime.h"
#include "sim/network.h"
#include "storage/ledger_storage.h"

namespace sbft::pbft {

struct PbftOptions {
  ProtocolConfig config;  // c must be 0
  ReplicaId id = 1;
  std::shared_ptr<storage::ILedgerStorage> ledger;  // optional persistence
  std::shared_ptr<recovery::IReplicaWal> wal;       // optional consensus WAL
  // Set when the replica is restarted into an already-running cluster: it
  // probes state transfer on boot in case its local log fell behind the
  // cluster's stable checkpoint (or the disk was lost entirely).
  bool recovering = false;
  // Fault injection: as a state-transfer donor, flip a byte in every chunk
  // payload served (fetchers must detect it by Merkle verification).
  bool corrupt_state_chunks = false;
};

struct PbftStats {
  uint64_t blocks_executed = 0;
  uint64_t requests_executed = 0;
  uint64_t view_changes = 0;
  uint64_t state_transfers = 0;
  // Durability / crash recovery (same semantics as core::ReplicaStats).
  uint64_t recoveries = 0;
  uint64_t blocks_replayed = 0;
  uint64_t wal_bytes_written = 0;
  uint64_t reply_cache_hits = 0;
  // Chunked state transfer (filled by RuntimeStats::merge_into).
  uint64_t state_transfer_chunks_served = 0;
  uint64_t state_transfer_chunks_fetched = 0;
  uint64_t state_transfer_invalid_chunks = 0;
  uint64_t state_transfer_resumes = 0;
  uint64_t state_transfer_bytes_transferred = 0;
  uint64_t delta_chunks_skipped = 0;    // fetcher: chunks seeded from local base
  uint64_t delta_bytes_saved = 0;       // fetcher: payload kept off the wire
  uint64_t donor_chunks_throttled = 0;  // donor: serves deferred by rate limit
};

class PbftReplica final : public sim::IActor {
 public:
  PbftReplica(PbftOptions options, std::unique_ptr<IService> service);

  void on_start(sim::ActorContext& ctx) override;
  void on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) override;
  void on_timer(uint64_t id, sim::ActorContext& ctx) override;

  ReplicaId id() const { return opts_.id; }
  ViewNum view() const { return view_; }
  SeqNum last_executed() const { return runtime_.last_executed(); }
  SeqNum last_stable() const { return runtime_.last_stable(); }
  const IService& service() const { return runtime_.service(); }
  const runtime::ReplicaRuntime& runtime() const { return runtime_; }
  /// Protocol stats merged with the runtime's protocol-agnostic stats.
  PbftStats stats() const;
  std::optional<Digest> committed_digest_of(SeqNum s) const;

 private:
  struct Slot {
    bool has_pp = false;
    ViewNum pp_view = 0;
    Digest h{};
    Digest block_digest{};
    std::optional<Block> block;
    std::set<ReplicaId> prepares;  // matching h
    std::set<ReplicaId> commits;
    bool sent_prepare = false;
    bool sent_commit = false;
    bool prepared = false;
    bool committed = false;
  };

  void handle_client_request(NodeId from, const ClientRequestMsg& m,
                             sim::ActorContext& ctx);
  void handle_pre_prepare(NodeId from, const PrePrepareMsg& m, sim::ActorContext& ctx);
  void handle_prepare(const PbftPrepareMsg& m, sim::ActorContext& ctx);
  void handle_commit(const PbftCommitMsg& m, sim::ActorContext& ctx);
  void handle_checkpoint(const PbftCheckpointMsg& m, sim::ActorContext& ctx);
  void handle_view_change(const PbftViewChangeMsg& m, sim::ActorContext& ctx);
  void handle_new_view(NodeId from, const PbftNewViewMsg& m, sim::ActorContext& ctx);
  void handle_state_transfer_request(const StateTransferRequestMsg& m,
                                     sim::ActorContext& ctx);
  void handle_state_transfer_reply(const StateTransferReplyMsg& m,
                                   sim::ActorContext& ctx);
  void handle_state_manifest(NodeId from, const StateManifestMsg& m,
                             sim::ActorContext& ctx);
  void handle_state_chunk_request(const StateChunkRequestMsg& m,
                                  sim::ActorContext& ctx);
  void handle_state_chunk(NodeId from, const StateChunkMsg& m,
                          sim::ActorContext& ctx);

  bool is_primary() const { return opts_.config.primary_of(view_) == opts_.id; }
  void try_propose(sim::ActorContext& ctx, bool flush_partial = false);
  void accept_pre_prepare(SeqNum s, ViewNum v, Block block, sim::ActorContext& ctx);
  void check_prepared(SeqNum s, sim::ActorContext& ctx);
  void check_committed(SeqNum s, sim::ActorContext& ctx);
  void try_execute(sim::ActorContext& ctx);
  void start_view_change(ViewNum target, sim::ActorContext& ctx);
  void enter_new_view(const PbftNewViewMsg& m, sim::ActorContext& ctx);
  void recover_from_storage();
  void request_state_transfer(sim::ActorContext& ctx);
  bool state_transfer_behind() const;
  void send_chunk_requests(sim::ActorContext& ctx);
  void complete_chunked_transfer(sim::ActorContext& ctx);
  /// Broadcasts the state-transfer probe (delta base advertised; the cold
  /// chunk-hashing of the local snapshot is charged here).
  void broadcast_state_probe(sim::ActorContext& ctx);
  /// Arms the donor tick while the rate limiter has budget in use or deferred
  /// requests queued (re-served there instead of being dropped).
  void arm_donor_tick(sim::ActorContext& ctx);
  bool execution_gap() const;
  void broadcast(sim::ActorContext& ctx, MessagePtr msg);
  void arm_progress_timer(sim::ActorContext& ctx);
  SeqNum le() const { return runtime_.last_executed(); }
  SeqNum ls() const { return runtime_.last_stable(); }

  PbftOptions opts_;
  runtime::ReplicaRuntime runtime_;

  ViewNum view_ = 0;
  bool in_view_change_ = false;
  ViewNum vc_target_ = 0;
  uint32_t vc_attempts_ = 0;
  SeqNum next_seq_ = 1;

  std::map<SeqNum, Slot> slots_;
  std::deque<Request> pending_;
  std::set<std::pair<ClientId, uint64_t>> pending_keys_;

  // Checkpoint votes: seq -> digest -> voters.
  std::map<SeqNum, std::map<Digest, std::set<ReplicaId>>> checkpoint_votes_;

  std::map<ViewNum, std::map<ReplicaId, PbftViewChangeMsg>> vc_msgs_;
  bool new_view_sent_ = false;

  SeqNum progress_marker_ = 0;
  bool progress_timer_armed_ = false;
  bool forwarded_waiting_ = false;
  bool st_inflight_ = false;
  bool donor_tick_armed_ = false;

  // Votes persisted by a previous incarnation for slots still in flight:
  // seq -> (highest voted view, block digest). A recovered replica refuses to
  // accept a conflicting pre-prepare at or below that view.
  std::map<SeqNum, std::pair<ViewNum, Digest>> wal_votes_;
  uint64_t recovered_replay_bytes_ = 0;  // charged as boot-time replay CPU

  PbftStats stats_;  // protocol-level counters; runtime fields merged in stats()
};

}  // namespace sbft::pbft
