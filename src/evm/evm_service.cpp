#include "evm/evm_service.h"

#include "common/serde.h"
#include "crypto/sha256.h"

namespace sbft::evm {

namespace {

Bytes nonce_key(const Address& a) {
  Bytes k;
  k.push_back('n');
  k.insert(k.end(), a.begin(), a.end());
  return k;
}

Bytes code_key(const Address& a) {
  Bytes k;
  k.push_back('c');
  k.insert(k.end(), a.begin(), a.end());
  return k;
}

Bytes storage_key(const Address& a, const U256& slot) {
  Bytes k;
  k.push_back('s');
  k.insert(k.end(), a.begin(), a.end());
  auto w = slot.to_word();
  k.insert(k.end(), w.begin(), w.end());
  return k;
}

void write_address(Writer& w, const Address& a) { w.raw(ByteSpan{a.data(), a.size()}); }

Address read_address(Reader& r) {
  Address a{};
  for (size_t i = 0; i < a.size(); ++i) a[i] = r.u8();
  return a;
}

}  // namespace

Bytes encode_create(const CreateTx& tx) {
  Writer w;
  w.u8(static_cast<uint8_t>(TxType::kCreate));
  write_address(w, tx.sender);
  w.bytes(as_span(tx.code));
  return std::move(w).take();
}

Bytes encode_call(const CallTx& tx) {
  Writer w;
  w.u8(static_cast<uint8_t>(TxType::kCall));
  write_address(w, tx.sender);
  write_address(w, tx.contract);
  w.bytes(as_span(tx.calldata));
  w.u64(tx.gas_limit);
  return std::move(w).take();
}

Bytes encode_tx_batch(const std::vector<Bytes>& txs) {
  Writer w;
  w.u8(static_cast<uint8_t>(TxType::kBatch));
  w.u32(static_cast<uint32_t>(txs.size()));
  for (const Bytes& tx : txs) w.bytes(as_span(tx));
  return std::move(w).take();
}

Bytes encode_tx_result(const TxResult& r) {
  Writer w;
  w.boolean(r.success);
  w.bytes(as_span(r.output));
  w.u64(r.gas_used);
  w.str(r.error);
  return std::move(w).take();
}

std::optional<TxResult> decode_tx_result(ByteSpan data) {
  Reader r(data);
  TxResult out;
  out.success = r.boolean();
  out.output = r.bytes();
  out.gas_used = r.u64();
  out.error = r.str();
  if (!r.at_end()) return std::nullopt;
  return out;
}

Address EvmLedgerService::derive_address(const Address& sender, uint64_t nonce) {
  Writer w;
  w.str("sbft.evm.addr");
  write_address(w, sender);
  w.u64(nonce);
  Digest d = crypto::sha256(as_span(w.data()));
  Address a{};
  std::copy(d.begin(), d.begin() + 20, a.begin());
  return a;
}

uint64_t EvmLedgerService::contracts_created() const {
  auto v = kv_.get(as_span("\x01total-creates"));
  if (!v || v->size() != 8) return 0;
  Reader r(as_span(*v));
  return r.u64();
}

uint64_t EvmLedgerService::creations_by(const Address& sender) const {
  auto v = kv_.get(as_span(nonce_key(sender)));
  if (!v || v->size() != 8) return 0;
  Reader r(as_span(*v));
  return r.u64();
}

U256 EvmLedgerService::sload(const Address& contract, const U256& slot) const {
  auto v = kv_.get(as_span(storage_key(contract, slot)));
  if (!v) return U256();
  return U256::from_bytes_be(as_span(*v));
}

void EvmLedgerService::sstore(const Address& contract, const U256& slot,
                              const U256& value) {
  Bytes key = storage_key(contract, slot);
  if (value.is_zero()) {
    kv_.erase(as_span(key));
  } else {
    kv_.put(as_span(key), as_span(value.to_bytes()));
  }
}

std::optional<Bytes> EvmLedgerService::code_of(const Address& contract) const {
  return kv_.get(as_span(code_key(contract)));
}

TxResult EvmLedgerService::apply_create(const CreateTx& tx) {
  uint64_t nonce = creations_by(tx.sender);
  Address addr = derive_address(tx.sender, nonce);
  kv_.put(as_span(code_key(addr)), as_span(tx.code));
  Writer w;
  w.u64(nonce + 1);
  kv_.put(as_span(nonce_key(tx.sender)), as_span(w.data()));
  Writer total;
  total.u64(contracts_created() + 1);
  kv_.put(as_span("\x01total-creates"), as_span(total.data()));
  TxResult r;
  r.success = true;
  r.output.assign(addr.begin(), addr.end());
  r.gas_used = 32000 + 200 * tx.code.size();  // Ethereum create cost model
  return r;
}

TxResult EvmLedgerService::apply_call(const CallTx& tx) {
  TxResult r;
  auto code = code_of(tx.contract);
  if (!code) {
    r.error = "no such contract";
    return r;
  }
  EvmParams params;
  params.code = as_span(*code);
  params.calldata = as_span(tx.calldata);
  params.self = tx.contract;
  params.caller = tx.sender;
  params.gas_limit = tx.gas_limit;
  EvmResult er = evm_execute(*this, params);
  r.success = er.ok();
  r.output = std::move(er.output);
  r.gas_used = er.gas_used + 21000;  // base transaction cost
  if (!r.success) {
    switch (er.status) {
      case EvmStatus::kRevert: r.error = "revert"; break;
      case EvmStatus::kOutOfGas: r.error = "out of gas"; break;
      default: r.error = er.error.empty() ? "invalid" : er.error; break;
    }
  }
  return r;
}

Bytes EvmLedgerService::execute(ByteSpan op) {
  last_gas_ = 21000;
  Reader r(op);
  uint8_t tag = r.u8();
  if (tag == static_cast<uint8_t>(TxType::kBatch)) {
    uint32_t count = r.u32();
    if (count > 100'000) return encode_tx_result({false, {}, 0, "malformed batch"});
    uint64_t total_gas = 0;
    Bytes last;
    for (uint32_t i = 0; i < count && r.ok(); ++i) {
      Bytes tx = r.bytes();
      last = execute(as_span(tx));
      total_gas += last_gas_;
    }
    last_gas_ = total_gas;
    return last;
  }
  if (tag == static_cast<uint8_t>(TxType::kCreate)) {
    CreateTx tx;
    tx.sender = read_address(r);
    tx.code = r.bytes();
    if (!r.at_end()) return encode_tx_result({false, {}, 0, "malformed create"});
    TxResult result = apply_create(tx);
    last_gas_ = result.gas_used;
    return encode_tx_result(result);
  }
  if (tag == static_cast<uint8_t>(TxType::kCall)) {
    CallTx tx;
    tx.sender = read_address(r);
    tx.contract = read_address(r);
    tx.calldata = r.bytes();
    tx.gas_limit = r.u64();
    if (!r.at_end()) return encode_tx_result({false, {}, 0, "malformed call"});
    TxResult result = apply_call(tx);
    last_gas_ = result.gas_used;
    return encode_tx_result(result);
  }
  return encode_tx_result({false, {}, 0, "unknown tx type"});
}

Bytes EvmLedgerService::query(ByteSpan q) const {
  // Query: raw storage read — contract address (20 bytes) + slot word (32).
  Reader r(q);
  Address contract = read_address(r);
  U256 slot = U256::from_bytes_be(as_span(r.bytes()));
  if (!r.at_end()) return {};
  return sload(contract, slot).to_bytes();
}

std::unique_ptr<IService> EvmLedgerService::clone_empty() const {
  return std::make_unique<EvmLedgerService>();
}

}  // namespace sbft::evm
