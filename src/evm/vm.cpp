#include "evm/vm.h"

#include <vector>

#include "crypto/sha256.h"

namespace sbft::evm {

namespace {

constexpr size_t kMaxStack = 1024;
constexpr size_t kMaxMemory = 1 << 22;  // 4 MiB per execution

struct Frame {
  IEvmHost& host;
  const EvmParams& p;
  std::vector<U256> stack;
  Bytes memory;
  uint64_t gas = 0;
  size_t pc = 0;
  uint32_t logs = 0;
  // Journal of storage writes; flushed to the host only on success.
  std::map<std::array<uint8_t, 32>, U256> journal;

  Frame(IEvmHost& h, const EvmParams& params) : host(h), p(params), gas(params.gas_limit) {
    stack.reserve(64);
  }

  bool charge(uint64_t cost) {
    if (gas < cost) return false;
    gas -= cost;
    return true;
  }

  bool grow_memory(uint64_t offset, uint64_t len) {
    if (len == 0) return true;
    uint64_t end = offset + len;
    if (end < offset || end > kMaxMemory) return false;
    if (end > memory.size()) {
      uint64_t new_words = (end + 31) / 32;
      uint64_t old_words = (memory.size() + 31) / 32;
      if (!charge((new_words - old_words) * 3)) return false;
      memory.resize(new_words * 32, 0);
    }
    return true;
  }

  U256 sload(const U256& slot) {
    auto it = journal.find(slot.to_word());
    if (it != journal.end()) return it->second;
    return host.sload(p.self, slot);
  }

  void flush_journal() {
    for (const auto& [slot, value] : journal)
      host.sstore(p.self, U256::from_bytes_be(ByteSpan{slot.data(), 32}), value);
  }
};

/// Valid jump destinations: positions holding JUMPDEST outside push data.
std::vector<bool> scan_jumpdests(ByteSpan code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t i = 0; i < code.size(); ++i) {
    uint8_t op = code[i];
    if (op == static_cast<uint8_t>(Op::JUMPDEST)) valid[i] = true;
    if (op >= static_cast<uint8_t>(Op::PUSH1) && op <= 0x7f)
      i += static_cast<size_t>(op - static_cast<uint8_t>(Op::PUSH1) + 1);
  }
  return valid;
}

EvmResult fail(EvmStatus status, const Frame& f, std::string error = {}) {
  EvmResult r;
  r.status = status;
  r.gas_used = f.p.gas_limit - f.gas;
  r.error = std::move(error);
  return r;
}

}  // namespace

EvmResult evm_execute(IEvmHost& host, const EvmParams& params) {
  Frame f(host, params);
  const ByteSpan code = params.code;
  const std::vector<bool> jumpdests = scan_jumpdests(code);

  auto pop = [&](U256& out) {
    if (f.stack.empty()) return false;
    out = f.stack.back();
    f.stack.pop_back();
    return true;
  };
  auto push = [&](const U256& v) {
    if (f.stack.size() >= kMaxStack) return false;
    f.stack.push_back(v);
    return true;
  };

  while (f.pc < code.size()) {
    uint8_t opcode = code[f.pc];

    // PUSH1..PUSH32
    if (opcode >= static_cast<uint8_t>(Op::PUSH1) && opcode <= 0x7f) {
      if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
      size_t n = static_cast<size_t>(opcode - static_cast<uint8_t>(Op::PUSH1) + 1);
      size_t avail = std::min(n, code.size() - f.pc - 1);
      U256 v = U256::from_bytes_be(code.subspan(f.pc + 1, avail));
      // Short push data at end of code is zero-extended on the right per EVM.
      if (avail < n) v = v.shl(8 * (n - avail));
      if (!push(v)) return fail(EvmStatus::kInvalid, f, "stack overflow");
      f.pc += 1 + n;
      continue;
    }
    // DUP1..DUP16
    if (opcode >= 0x80 && opcode <= 0x8f) {
      if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
      size_t n = static_cast<size_t>(opcode - 0x80 + 1);
      if (f.stack.size() < n) return fail(EvmStatus::kInvalid, f, "stack underflow");
      if (!push(f.stack[f.stack.size() - n]))
        return fail(EvmStatus::kInvalid, f, "stack overflow");
      ++f.pc;
      continue;
    }
    // SWAP1..SWAP16
    if (opcode >= 0x90 && opcode <= 0x9f) {
      if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
      size_t n = static_cast<size_t>(opcode - 0x90 + 1);
      if (f.stack.size() < n + 1) return fail(EvmStatus::kInvalid, f, "stack underflow");
      std::swap(f.stack.back(), f.stack[f.stack.size() - 1 - n]);
      ++f.pc;
      continue;
    }
    // LOG0..LOG2
    if (opcode >= 0xa0 && opcode <= 0xa2) {
      size_t topics = static_cast<size_t>(opcode - 0xa0);
      U256 off, len, topic;
      if (!pop(off) || !pop(len)) return fail(EvmStatus::kInvalid, f, "stack underflow");
      for (size_t i = 0; i < topics; ++i)
        if (!pop(topic)) return fail(EvmStatus::kInvalid, f, "stack underflow");
      if (!off.fits64() || !len.fits64() || !f.grow_memory(off.low64(), len.low64()))
        return fail(EvmStatus::kOutOfGas, f);
      if (!f.charge(375 + 375 * topics + 8 * len.low64()))
        return fail(EvmStatus::kOutOfGas, f);
      ++f.logs;
      ++f.pc;
      continue;
    }

    U256 a, b, c;
    switch (static_cast<Op>(opcode)) {
      case Op::STOP: {
        f.flush_journal();
        EvmResult r;
        r.status = EvmStatus::kSuccess;
        r.gas_used = f.p.gas_limit - f.gas;
        r.log_count = f.logs;
        return r;
      }
      case Op::ADD: case Op::MUL: case Op::SUB: case Op::DIV: case Op::MOD:
      case Op::LT: case Op::GT: case Op::EQ: case Op::AND: case Op::OR:
      case Op::XOR: case Op::BYTE: case Op::SHL: case Op::SHR: {
        uint64_t cost = (opcode == static_cast<uint8_t>(Op::MUL) ||
                         opcode == static_cast<uint8_t>(Op::DIV) ||
                         opcode == static_cast<uint8_t>(Op::MOD)) ? 5 : 3;
        if (!f.charge(cost)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        U256 r;
        switch (static_cast<Op>(opcode)) {
          case Op::ADD: r = a + b; break;
          case Op::MUL: r = a * b; break;
          case Op::SUB: r = a - b; break;
          case Op::DIV: r = a / b; break;
          case Op::MOD: r = a % b; break;
          case Op::LT: r = U256(a < b ? 1 : 0); break;
          case Op::GT: r = U256(a > b ? 1 : 0); break;
          case Op::EQ: r = U256(a == b ? 1 : 0); break;
          case Op::AND: r = a & b; break;
          case Op::OR: r = a | b; break;
          case Op::XOR: r = a ^ b; break;
          case Op::BYTE:
            r = (a.fits64() && a.low64() < 32) ? U256(b.to_word()[a.low64()]) : U256(0);
            break;
          case Op::SHL: r = a.fits64() ? b.shl(a.low64()) : U256(0); break;
          case Op::SHR: r = a.fits64() ? b.shr(a.low64()) : U256(0); break;
          default: break;
        }
        if (!push(r)) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::ADDMOD: case Op::MULMOD: {
        if (!f.charge(8)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a) || !pop(b) || !pop(c))
          return fail(EvmStatus::kInvalid, f, "stack underflow");
        U256 r = static_cast<Op>(opcode) == Op::ADDMOD ? U256::addmod(a, b, c)
                                                       : U256::mulmod(a, b, c);
        if (!push(r)) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::EXP: {
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!f.charge(10 + 50 * ((b.is_zero() ? 0u : 32u))))
          return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256::exp(a, b))) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::ISZERO: case Op::NOT: {
        if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        U256 r = static_cast<Op>(opcode) == Op::ISZERO ? U256(a.is_zero() ? 1 : 0) : ~a;
        if (!push(r)) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::SHA3: {
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !b.fits64() || !f.grow_memory(a.low64(), b.low64()))
          return fail(EvmStatus::kOutOfGas, f);
        if (!f.charge(30 + 6 * ((b.low64() + 31) / 32)))
          return fail(EvmStatus::kOutOfGas, f);
        Digest d = crypto::sha256(ByteSpan{f.memory.data() + a.low64(), b.low64()});
        if (!push(U256::from_bytes_be(as_span(d))))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::ADDRESS: case Op::CALLER: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        const Address& addr =
            static_cast<Op>(opcode) == Op::ADDRESS ? f.p.self : f.p.caller;
        if (!push(U256::from_bytes_be(ByteSpan{addr.data(), addr.size()})))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::CALLVALUE: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!push(f.p.callvalue)) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::CALLDATALOAD: {
        if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        uint8_t word[32] = {0};
        if (a.fits64()) {
          uint64_t off = a.low64();
          for (size_t i = 0; i < 32 && off + i < f.p.calldata.size(); ++i)
            word[i] = f.p.calldata[off + i];
        }
        if (!push(U256::from_bytes_be(ByteSpan{word, 32})))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::CALLDATASIZE: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256(f.p.calldata.size())))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::CALLDATACOPY: {
        if (!pop(a) || !pop(b) || !pop(c))
          return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !b.fits64() || !c.fits64() ||
            !f.grow_memory(a.low64(), c.low64()))
          return fail(EvmStatus::kOutOfGas, f);
        if (!f.charge(3 + 3 * ((c.low64() + 31) / 32)))
          return fail(EvmStatus::kOutOfGas, f);
        for (uint64_t i = 0; i < c.low64(); ++i) {
          uint64_t src = b.low64() + i;
          f.memory[a.low64() + i] = src < f.p.calldata.size() ? f.p.calldata[src] : 0;
        }
        ++f.pc;
        break;
      }
      case Op::POP: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        ++f.pc;
        break;
      }
      case Op::MLOAD: {
        if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !f.grow_memory(a.low64(), 32))
          return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256::from_bytes_be(ByteSpan{f.memory.data() + a.low64(), 32})))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::MSTORE: {
        if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !f.grow_memory(a.low64(), 32))
          return fail(EvmStatus::kOutOfGas, f);
        auto w = b.to_word();
        std::copy(w.begin(), w.end(), f.memory.begin() + static_cast<ptrdiff_t>(a.low64()));
        ++f.pc;
        break;
      }
      case Op::MSTORE8: {
        if (!f.charge(3)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !f.grow_memory(a.low64(), 1))
          return fail(EvmStatus::kOutOfGas, f);
        f.memory[a.low64()] = static_cast<uint8_t>(b.low64());
        ++f.pc;
        break;
      }
      case Op::SLOAD: {
        if (!f.charge(200)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!push(f.sload(a))) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::SSTORE: {
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        bool fresh = f.sload(a).is_zero() && !b.is_zero();
        if (!f.charge(fresh ? 20000 : 5000)) return fail(EvmStatus::kOutOfGas, f);
        f.journal[a.to_word()] = b;
        ++f.pc;
        break;
      }
      case Op::JUMP: {
        if (!f.charge(8)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || a.low64() >= code.size() || !jumpdests[a.low64()])
          return fail(EvmStatus::kInvalid, f, "bad jump destination");
        f.pc = a.low64();
        break;
      }
      case Op::JUMPI: {
        if (!f.charge(10)) return fail(EvmStatus::kOutOfGas, f);
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!b.is_zero()) {
          if (!a.fits64() || a.low64() >= code.size() || !jumpdests[a.low64()])
            return fail(EvmStatus::kInvalid, f, "bad jump destination");
          f.pc = a.low64();
        } else {
          ++f.pc;
        }
        break;
      }
      case Op::PC: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256(f.pc))) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::MSIZE: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256(f.memory.size())))
          return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::GAS: {
        if (!f.charge(2)) return fail(EvmStatus::kOutOfGas, f);
        if (!push(U256(f.gas))) return fail(EvmStatus::kInvalid, f, "stack overflow");
        ++f.pc;
        break;
      }
      case Op::JUMPDEST: {
        if (!f.charge(1)) return fail(EvmStatus::kOutOfGas, f);
        ++f.pc;
        break;
      }
      case Op::RETURN: case Op::REVERT: {
        if (!pop(a) || !pop(b)) return fail(EvmStatus::kInvalid, f, "stack underflow");
        if (!a.fits64() || !b.fits64() || !f.grow_memory(a.low64(), b.low64()))
          return fail(EvmStatus::kOutOfGas, f);
        EvmResult r;
        if (static_cast<Op>(opcode) == Op::RETURN) {
          f.flush_journal();
          r.status = EvmStatus::kSuccess;
        } else {
          r.status = EvmStatus::kRevert;
        }
        r.output.assign(f.memory.begin() + static_cast<ptrdiff_t>(a.low64()),
                        f.memory.begin() + static_cast<ptrdiff_t>(a.low64() + b.low64()));
        r.gas_used = f.p.gas_limit - f.gas;
        r.log_count = f.logs;
        return r;
      }
      default:
        return fail(EvmStatus::kInvalid, f, "unknown opcode");
    }
  }
  // Fell off the end of code: implicit STOP.
  f.flush_journal();
  EvmResult r;
  r.status = EvmStatus::kSuccess;
  r.gas_used = f.p.gas_limit - f.gas;
  r.log_count = f.logs;
  return r;
}

}  // namespace sbft::evm
