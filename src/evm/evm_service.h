// EVM ledger service (§IV): models Ethereum's two transaction types —
// contract creation and contract execution — as operations of the generic
// replicated service, with all contract code and storage held in the
// authenticated key-value store so the state digest commits to the ledger.
#pragma once

#include <optional>

#include "evm/vm.h"
#include "kv/kv_service.h"
#include "kv/service.h"

namespace sbft::evm {

enum class TxType : uint8_t { kCreate = 1, kCall = 2, kBatch = 3 };

struct CreateTx {
  Address sender{};
  Bytes code;  // runtime bytecode (init-code indirection is not modeled)
};

struct CallTx {
  Address sender{};
  Address contract{};
  Bytes calldata;
  uint64_t gas_limit = 1'000'000;
};

Bytes encode_create(const CreateTx& tx);
Bytes encode_call(const CallTx& tx);
/// Wraps several transactions into one client request (§IX: "batching
/// transactions into chunks of 12KB, on average about 50 transactions").
Bytes encode_tx_batch(const std::vector<Bytes>& txs);

struct TxResult {
  bool success = false;
  Bytes output;        // EVM return data, or the new address for kCreate
  uint64_t gas_used = 0;
  std::string error;
};
Bytes encode_tx_result(const TxResult& r);
std::optional<TxResult> decode_tx_result(ByteSpan data);

class EvmLedgerService final : public IService, public IEvmHost {
 public:
  EvmLedgerService() = default;

  // IService
  Bytes execute(ByteSpan op) override;
  Bytes query(ByteSpan q) const override;
  Digest state_digest() const override { return kv_.state_digest(); }
  Bytes snapshot() const override { return kv_.snapshot(); }
  bool restore(ByteSpan snapshot) override { return kv_.restore(snapshot); }
  // The ledger's serializer is the KV store's, so the chunk-stable paged
  // layout (and with it delta state transfer) covers EVM snapshots too.
  void set_snapshot_chunk_hint(uint32_t page) override {
    kv_.set_snapshot_chunk_hint(page);
  }
  std::unique_ptr<IService> clone_empty() const override;
  int64_t last_execute_cost_us(const sim::CostModel& costs) const override {
    return costs.evm_us(last_gas_);
  }

  // IEvmHost (storage is write-through to the authenticated KV store)
  U256 sload(const Address& contract, const U256& slot) const override;
  void sstore(const Address& contract, const U256& slot, const U256& value) override;

  std::optional<Bytes> code_of(const Address& contract) const;
  uint64_t contracts_created() const;

  /// Deterministic contract address: first 20 bytes of
  /// SHA-256("sbft.evm.addr" || sender || sender_nonce), where sender_nonce
  /// counts the creations by that sender — as in Ethereum, a sender's k-th
  /// creation address is known in advance. (Ethereum uses
  /// keccak(rlp(sender, nonce)); see DESIGN.md §3.)
  static Address derive_address(const Address& sender, uint64_t nonce);
  uint64_t creations_by(const Address& sender) const;

 private:
  TxResult apply_create(const CreateTx& tx);
  TxResult apply_call(const CallTx& tx);

  kv::KvService kv_;
  uint64_t last_gas_ = 21000;
};

}  // namespace sbft::evm
