#include "evm/u256.h"

namespace sbft::evm {

using crypto::BigUint;

U256 U256::from_bytes_be(ByteSpan data) {
  U256 out;
  size_t n = std::min<size_t>(data.size(), 32);
  // Right-align: the last byte of `data` is the least significant.
  for (size_t i = 0; i < n; ++i) {
    uint8_t byte = data[data.size() - 1 - i];
    out.limb[i / 8] |= static_cast<uint64_t>(byte) << (8 * (i % 8));
  }
  return out;
}

U256 U256::from_big(const BigUint& b) {
  Bytes be = b.to_bytes_be();
  if (be.size() > 32) be.erase(be.begin(), be.end() - 32);  // truncate mod 2^256
  return from_bytes_be(as_span(be));
}

BigUint U256::to_big() const { return BigUint::from_bytes_be(ByteSpan{to_word().data(), 32}); }

std::array<uint8_t, 32> U256::to_word() const {
  std::array<uint8_t, 32> out{};
  for (size_t i = 0; i < 32; ++i) {
    out[31 - i] = static_cast<uint8_t>(limb[i / 8] >> (8 * (i % 8)));
  }
  return out;
}

Bytes U256::to_bytes() const {
  auto w = to_word();
  return Bytes(w.begin(), w.end());
}

int U256::cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] != b.limb[i]) return a.limb[i] < b.limb[i] ? -1 : 1;
  }
  return 0;
}

U256 operator+(const U256& a, const U256& b) {
  U256 out;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 sum = carry + a.limb[i] + b.limb[i];
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = sum >> 64;
  }
  return out;
}

U256 operator-(const U256& a, const U256& b) {
  U256 out;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = static_cast<unsigned __int128>(a.limb[i]) - b.limb[i] - borrow;
    out.limb[i] = static_cast<uint64_t>(d);
    borrow = (d >> 64) & 1;
  }
  return out;
}

U256 operator*(const U256& a, const U256& b) {
  U256 out;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; i + j < 4; ++j) {
      unsigned __int128 cur = static_cast<unsigned __int128>(a.limb[i]) * b.limb[j] +
                              out.limb[i + j] + carry;
      out.limb[i + j] = static_cast<uint64_t>(cur);
      carry = cur >> 64;
    }
  }
  return out;
}

U256 operator/(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();
  return U256::from_big(a.to_big() / b.to_big());
}

U256 operator%(const U256& a, const U256& b) {
  if (b.is_zero()) return U256();
  return U256::from_big(a.to_big() % b.to_big());
}

U256 operator&(const U256& a, const U256& b) {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = a.limb[i] & b.limb[i];
  return out;
}

U256 operator|(const U256& a, const U256& b) {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = a.limb[i] | b.limb[i];
  return out;
}

U256 operator^(const U256& a, const U256& b) {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = a.limb[i] ^ b.limb[i];
  return out;
}

U256 U256::operator~() const {
  U256 out;
  for (int i = 0; i < 4; ++i) out.limb[i] = ~limb[i];
  return out;
}

U256 U256::shl(uint64_t bits) const {
  if (bits >= 256) return U256();
  U256 out;
  uint64_t limb_shift = bits / 64;
  uint64_t bit_shift = bits % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    int src = i - static_cast<int>(limb_shift);
    if (src >= 0) v = limb[static_cast<size_t>(src)] << bit_shift;
    if (bit_shift != 0 && src - 1 >= 0)
      v |= limb[static_cast<size_t>(src - 1)] >> (64 - bit_shift);
    out.limb[static_cast<size_t>(i)] = v;
  }
  return out;
}

U256 U256::shr(uint64_t bits) const {
  if (bits >= 256) return U256();
  U256 out;
  uint64_t limb_shift = bits / 64;
  uint64_t bit_shift = bits % 64;
  for (size_t i = 0; i < 4; ++i) {
    uint64_t v = 0;
    size_t src = i + limb_shift;
    if (src < 4) v = limb[src] >> bit_shift;
    if (bit_shift != 0 && src + 1 < 4) v |= limb[src + 1] << (64 - bit_shift);
    out.limb[i] = v;
  }
  return out;
}

U256 U256::exp(const U256& base, const U256& e) {
  U256 result(1);
  U256 b = base;
  for (int bit = 0; bit < 256; ++bit) {
    size_t i = static_cast<size_t>(bit) / 64;
    if ((e.limb[i] >> (bit % 64)) & 1) result = result * b;
    // Square for the next bit; skip the final wasted square.
    if (bit < 255) b = b * b;
    // Early exit when no higher bits remain.
    bool more = false;
    for (size_t j = i; j < 4; ++j) {
      uint64_t rest = e.limb[j];
      if (j == i) rest &= ~((bit % 64 == 63) ? 0xffffffffffffffffull
                                             : ((1ull << ((bit % 64) + 1)) - 1));
      if (rest) {
        more = true;
        break;
      }
    }
    if (!more) break;
  }
  return result;
}

U256 U256::addmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256();
  return from_big((a.to_big() + b.to_big()) % m.to_big());
}

U256 U256::mulmod(const U256& a, const U256& b, const U256& m) {
  if (m.is_zero()) return U256();
  return from_big((a.to_big() * b.to_big()) % m.to_big());
}

}  // namespace sbft::evm
