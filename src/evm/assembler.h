// Tiny EVM assembler used to author the contracts in the workload library.
// Supports labeled jump targets with two-byte push fixups.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "evm/vm.h"

namespace sbft::evm {

class Assembler {
 public:
  Assembler& op(Op o) {
    code_.push_back(static_cast<uint8_t>(o));
    return *this;
  }

  /// Minimal-width PUSH of a 64-bit constant.
  Assembler& push(uint64_t v);
  /// PUSH of a full 256-bit constant (always PUSH32).
  Assembler& push(const U256& v);
  /// PUSH2 of a label's code offset; resolved at assemble() time.
  Assembler& push_label(const std::string& name);
  /// Defines `name` here and emits a JUMPDEST.
  Assembler& label(const std::string& name);

  /// Resolves fixups and returns the bytecode. Throws std::logic_error on
  /// undefined labels.
  Bytes assemble() const;

 private:
  Bytes code_;
  std::map<std::string, size_t> labels_;
  std::vector<std::pair<size_t, std::string>> fixups_;  // offset of PUSH2 operand
};

}  // namespace sbft::evm
