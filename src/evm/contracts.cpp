#include "evm/contracts.h"

#include "evm/assembler.h"

namespace sbft::evm {

namespace {

/// Emits code that replaces the account value on top of the stack with its
/// balance storage slot: slot = SHA3(account_word || zero_word).
void emit_balance_slot(Assembler& a) {
  a.push(uint64_t{0}).op(Op::MSTORE);                 // mem[0..32) = account
  a.push(uint64_t{0}).push(uint64_t{32}).op(Op::MSTORE);  // mem[32..64) = 0
  a.push(uint64_t{64}).push(uint64_t{0}).op(Op::SHA3);    // [slot]
}

/// Emits "store top of stack at mem[0] and RETURN 32 bytes".
void emit_return_word(Assembler& a) {
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
}

Bytes encode_call3(uint64_t selector, const U256& w1, const U256& w2) {
  Bytes out;
  auto sel = U256(selector).to_word();
  auto a1 = w1.to_word();
  auto a2 = w2.to_word();
  out.insert(out.end(), sel.begin(), sel.end());
  out.insert(out.end(), a1.begin(), a1.end());
  out.insert(out.end(), a2.begin(), a2.end());
  return out;
}

}  // namespace

Bytes counter_contract() {
  Assembler a;
  a.push(uint64_t{0}).op(Op::SLOAD);       // [count]
  a.push(uint64_t{1}).op(Op::ADD);         // [count+1]
  a.op(Op::DUP1);                          // [count+1, count+1]
  a.push(uint64_t{0}).op(Op::SSTORE);      // [count+1]
  emit_return_word(a);
  return a.assemble();
}

Bytes token_contract() {
  Assembler a;
  // Dispatcher.
  a.push(uint64_t{0}).op(Op::CALLDATALOAD);                      // [sel]
  a.op(Op::DUP1).push(uint64_t{1}).op(Op::EQ).push_label("mint").op(Op::JUMPI);
  a.op(Op::DUP1).push(uint64_t{2}).op(Op::EQ).push_label("transfer").op(Op::JUMPI);
  a.op(Op::DUP1).push(uint64_t{3}).op(Op::EQ).push_label("balanceOf").op(Op::JUMPI);
  a.push(uint64_t{0}).push(uint64_t{0}).op(Op::REVERT);

  // mint(account, amount): balance[account] += amount
  a.label("mint").op(Op::POP);                                    // []
  a.push(uint64_t{32}).op(Op::CALLDATALOAD);                      // [acct]
  emit_balance_slot(a);                                           // [slot]
  a.op(Op::DUP1).op(Op::SLOAD);                                   // [slot, bal]
  a.push(uint64_t{64}).op(Op::CALLDATALOAD).op(Op::ADD);          // [slot, bal+amt]
  a.op(Op::SWAP1).op(Op::SSTORE);                                 // []
  a.push(uint64_t{1});
  emit_return_word(a);

  // transfer(to, amount): REVERT if balance[caller] < amount.
  a.label("transfer").op(Op::POP);                                // []
  a.op(Op::CALLER);                                               // [caller]
  emit_balance_slot(a);                                           // [fslot]
  a.op(Op::DUP1).op(Op::SLOAD);                                   // [fslot, bal]
  a.op(Op::DUP1).push(uint64_t{64}).op(Op::CALLDATALOAD).op(Op::GT);  // [fslot,bal, amt>bal]
  a.push_label("insufficient").op(Op::JUMPI);                     // [fslot, bal]
  a.push(uint64_t{64}).op(Op::CALLDATALOAD).op(Op::SWAP1).op(Op::SUB);  // [fslot, bal-amt]
  a.op(Op::SWAP1).op(Op::SSTORE);                                 // []
  a.push(uint64_t{32}).op(Op::CALLDATALOAD);                      // [to]
  emit_balance_slot(a);                                           // [tslot]
  a.op(Op::DUP1).op(Op::SLOAD);                                   // [tslot, tbal]
  a.push(uint64_t{64}).op(Op::CALLDATALOAD).op(Op::ADD);          // [tslot, tbal+amt]
  a.op(Op::SWAP1).op(Op::SSTORE);                                 // []
  a.push(uint64_t{1});
  emit_return_word(a);

  // balanceOf(account)
  a.label("balanceOf").op(Op::POP);                               // []
  a.push(uint64_t{32}).op(Op::CALLDATALOAD);                      // [acct]
  emit_balance_slot(a);                                           // [slot]
  a.op(Op::SLOAD);                                                // [bal]
  emit_return_word(a);

  a.label("insufficient");
  a.push(uint64_t{0}).push(uint64_t{0}).op(Op::REVERT);
  return a.assemble();
}

Bytes token_call_mint(const U256& account, const U256& amount) {
  return encode_call3(1, account, amount);
}
Bytes token_call_transfer(const U256& to, const U256& amount) {
  return encode_call3(2, to, amount);
}
Bytes token_call_balance_of(const U256& account) {
  return encode_call3(3, account, U256(0));
}

Bytes spin_contract() {
  Assembler a;
  a.push(uint64_t{32}).op(Op::CALLDATALOAD);  // [n]
  a.push(uint64_t{0});                        // [n, i]
  a.push(uint64_t{1});                        // [n, i, acc]
  a.label("loop");                            // [n, i, acc]
  a.push(uint64_t{3}).op(Op::MUL).push(uint64_t{7}).op(Op::ADD);  // [n,i,acc']
  a.op(Op::SWAP1).push(uint64_t{1}).op(Op::ADD).op(Op::SWAP1);    // [n,i+1,acc']
  a.op(Op::DUP2).op(Op::DUP4).op(Op::GT);     // [n,i,acc, n>i]
  a.push_label("loop").op(Op::JUMPI);         // [n,i,acc]
  emit_return_word(a);                        // returns acc
  return a.assemble();
}

Bytes spin_call(uint64_t iterations) {
  return encode_call3(0, U256(iterations), U256(0));
}

}  // namespace sbft::evm
