// 256-bit unsigned integer for the EVM-subset interpreter. Little-endian
// 64-bit limbs; wrap-around semantics matching the EVM (mod 2^256). Division
// and exponentiation delegate to the bignum substrate.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/bignum.h"

namespace sbft::evm {

struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : limb{v, 0, 0, 0} {}

  static U256 from_bytes_be(ByteSpan data);  // up to 32 bytes, right-aligned
  static U256 from_big(const crypto::BigUint& b);
  crypto::BigUint to_big() const;
  /// 32-byte big-endian encoding (EVM word).
  std::array<uint8_t, 32> to_word() const;
  Bytes to_bytes() const;

  bool is_zero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  uint64_t low64() const { return limb[0]; }
  /// True if the value fits in 64 bits.
  bool fits64() const { return (limb[1] | limb[2] | limb[3]) == 0; }

  friend bool operator==(const U256& a, const U256& b) { return a.limb == b.limb; }
  friend bool operator!=(const U256& a, const U256& b) { return !(a == b); }
  static int cmp(const U256& a, const U256& b);
  friend bool operator<(const U256& a, const U256& b) { return cmp(a, b) < 0; }
  friend bool operator>(const U256& a, const U256& b) { return cmp(a, b) > 0; }

  friend U256 operator+(const U256& a, const U256& b);
  friend U256 operator-(const U256& a, const U256& b);
  friend U256 operator*(const U256& a, const U256& b);
  friend U256 operator/(const U256& a, const U256& b);  // x/0 == 0 (EVM rule)
  friend U256 operator%(const U256& a, const U256& b);  // x%0 == 0 (EVM rule)
  friend U256 operator&(const U256& a, const U256& b);
  friend U256 operator|(const U256& a, const U256& b);
  friend U256 operator^(const U256& a, const U256& b);
  U256 operator~() const;
  U256 shl(uint64_t bits) const;
  U256 shr(uint64_t bits) const;

  static U256 exp(const U256& base, const U256& e);           // mod 2^256
  static U256 addmod(const U256& a, const U256& b, const U256& m);
  static U256 mulmod(const U256& a, const U256& b, const U256& m);
};

}  // namespace sbft::evm
