#include "evm/assembler.h"

#include <stdexcept>

namespace sbft::evm {

Assembler& Assembler::push(uint64_t v) {
  // Count significant bytes (at least one).
  int n = 1;
  for (int i = 7; i >= 1; --i) {
    if (v >> (8 * i)) {
      n = i + 1;
      break;
    }
  }
  code_.push_back(static_cast<uint8_t>(static_cast<uint8_t>(Op::PUSH1) + n - 1));
  for (int i = n - 1; i >= 0; --i) code_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  return *this;
}

Assembler& Assembler::push(const U256& v) {
  code_.push_back(0x7f);  // PUSH32
  auto w = v.to_word();
  code_.insert(code_.end(), w.begin(), w.end());
  return *this;
}

Assembler& Assembler::push_label(const std::string& name) {
  code_.push_back(static_cast<uint8_t>(Op::PUSH1) + 1);  // PUSH2
  fixups_.emplace_back(code_.size(), name);
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Assembler& Assembler::label(const std::string& name) {
  labels_[name] = code_.size();
  return op(Op::JUMPDEST);
}

Bytes Assembler::assemble() const {
  Bytes out = code_;
  for (const auto& [offset, name] : fixups_) {
    auto it = labels_.find(name);
    if (it == labels_.end()) throw std::logic_error("undefined label: " + name);
    out[offset] = static_cast<uint8_t>(it->second >> 8);
    out[offset + 1] = static_cast<uint8_t>(it->second);
  }
  return out;
}

}  // namespace sbft::evm
