// EVM-subset interpreter (§IV "A Smart contract engine", §VIII).
//
// A deterministic 256-bit stack machine implementing the arithmetic,
// comparison, bitwise, memory, storage, control-flow, calldata, hashing and
// logging core of 2018-era EVM bytecode, with gas metering. Substitutions
// versus cpp-ethereum are documented in DESIGN.md §3: SHA3 is backed by
// SHA-256, and cross-contract CALL/CREATE opcodes are not implemented
// (the ledger layer models Ethereum's two transaction types instead).
//
// Storage writes are journaled during execution and flushed to the host only
// on successful completion, so REVERT and out-of-gas leave state untouched.
#pragma once

#include <map>
#include <string>

#include "common/bytes.h"
#include "evm/u256.h"

namespace sbft::evm {

using Address = std::array<uint8_t, 20>;

/// Storage host: the ledger backs this with the authenticated KV store.
class IEvmHost {
 public:
  virtual ~IEvmHost() = default;
  virtual U256 sload(const Address& contract, const U256& slot) const = 0;
  virtual void sstore(const Address& contract, const U256& slot, const U256& value) = 0;
};

enum class Op : uint8_t {
  STOP = 0x00, ADD = 0x01, MUL = 0x02, SUB = 0x03, DIV = 0x04, MOD = 0x06,
  ADDMOD = 0x08, MULMOD = 0x09, EXP = 0x0a,
  LT = 0x10, GT = 0x11, EQ = 0x14, ISZERO = 0x15,
  AND = 0x16, OR = 0x17, XOR = 0x18, NOT = 0x19, BYTE = 0x1a,
  SHL = 0x1b, SHR = 0x1c,
  SHA3 = 0x20,
  ADDRESS = 0x30, CALLER = 0x33, CALLVALUE = 0x34,
  CALLDATALOAD = 0x35, CALLDATASIZE = 0x36, CALLDATACOPY = 0x37,
  POP = 0x50, MLOAD = 0x51, MSTORE = 0x52, MSTORE8 = 0x53,
  SLOAD = 0x54, SSTORE = 0x55, JUMP = 0x56, JUMPI = 0x57,
  PC = 0x58, MSIZE = 0x59, GAS = 0x5a, JUMPDEST = 0x5b,
  PUSH1 = 0x60,  // ..PUSH32 = 0x7f
  DUP1 = 0x80, DUP2 = 0x81, DUP3 = 0x82, DUP4 = 0x83,    // ..DUP16 = 0x8f
  SWAP1 = 0x90, SWAP2 = 0x91, SWAP3 = 0x92,              // ..SWAP16 = 0x9f
  LOG0 = 0xa0, LOG1 = 0xa1, LOG2 = 0xa2,
  RETURN = 0xf3, REVERT = 0xfd,
};

enum class EvmStatus { kSuccess, kRevert, kOutOfGas, kInvalid };

struct EvmResult {
  EvmStatus status = EvmStatus::kInvalid;
  Bytes output;
  uint64_t gas_used = 0;
  uint32_t log_count = 0;
  std::string error;  // human-readable cause for kInvalid

  bool ok() const { return status == EvmStatus::kSuccess; }
};

struct EvmParams {
  ByteSpan code;
  ByteSpan calldata;
  Address self{};
  Address caller{};
  U256 callvalue;
  uint64_t gas_limit = 10'000'000;
};

/// Runs `params.code` to completion against `host`.
EvmResult evm_execute(IEvmHost& host, const EvmParams& params);

}  // namespace sbft::evm
