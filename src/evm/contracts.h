// Hand-assembled contract library used by the smart-contract workload
// (DESIGN.md §3: synthetic stand-ins for the paper's Ethereum trace).
#pragma once

#include "common/bytes.h"
#include "evm/u256.h"

namespace sbft::evm {

/// Counter: every call increments storage slot 0 and returns the new value.
Bytes counter_contract();

/// ERC-20-style token with per-account balances in a SHA3-derived mapping.
/// Calldata layout: word0 selector, word1 account, word2 amount.
///   selector 1: mint(account, amount)      -> 1
///   selector 2: transfer(to, amount)       -> 1, REVERTs on insufficient funds
///   selector 3: balanceOf(account)         -> balance
Bytes token_contract();
Bytes token_call_mint(const U256& account, const U256& amount);
Bytes token_call_transfer(const U256& to, const U256& amount);
Bytes token_call_balance_of(const U256& account);

/// Compute-heavy contract: word1 = loop iterations; returns an accumulator.
/// Models the expensive tail of real contract workloads.
Bytes spin_contract();
Bytes spin_call(uint64_t iterations);

}  // namespace sbft::evm
