// Replica write-ahead log (§VIII: the paper persists consensus-critical state
// through RocksDB so replicas survive crashes and rejoin).
//
// The ledger (storage/ledger_storage.h) holds the committed decision blocks;
// the WAL layers the remaining consensus-critical metadata on top of it:
//   * the highest view the replica entered,
//   * the latest stable checkpoint certificate plus its service snapshot,
//   * in-flight slot votes (seq, view, block digest) written *before* the
//     replica emits a sign-share, so a recovered replica can never be tricked
//     into equivocating about a slot it voted on pre-crash.
//
// On checkpoint the log compacts: votes at or below the stable sequence are
// dropped and superseded checkpoints/views supersede in-place on load. The
// default FileWal policy is *incremental* (RocksDB-style): a checkpoint
// appends one record, and the file is only rewritten from scratch when the
// dead-record ratio crosses a threshold — instead of rewriting the whole log
// (snapshot + every surviving vote) at every checkpoint. The old behaviour is
// kept as WalCompaction::kFullRewrite for comparison (recovery_bench asserts
// the incremental policy writes fewer bytes).
//
// Two implementations: MemoryWal (simulation — the harness keeps the handle
// alive across a simulated restart, standing in for the surviving disk) and
// FileWal (versioned on-disk format that tolerates a truncated tail record,
// i.e. a partial write at the moment of the crash).
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "proto/message.h"

namespace sbft::recovery {

/// A slot the replica voted on (sent a sign-share for) before crashing.
struct WalVote {
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest block_digest{};
};

/// Materialized view of the log, as rebuilt by load().
struct WalState {
  ViewNum view = 0;
  SeqNum last_stable = 0;      // 0: no checkpoint recorded yet
  ExecCertificate checkpoint;  // pi-certified; valid when last_stable > 0
  Bytes snapshot;              // service snapshot at the checkpoint
  std::vector<WalVote> votes;  // votes above last_stable, ascending seq

  bool empty() const { return view == 0 && last_stable == 0 && votes.empty(); }
};

class IReplicaWal {
 public:
  virtual ~IReplicaWal() = default;

  /// Records that the replica entered `view` (monotone).
  virtual void record_view(ViewNum view) = 0;
  /// Records a slot vote; must be durable before the sign-share leaves.
  virtual void record_vote(SeqNum seq, ViewNum view, const Digest& block_digest) = 0;
  /// Records a new stable checkpoint and compacts everything it supersedes.
  virtual void record_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) = 0;

  /// Rebuilds the logical state from the log (empty state for a fresh log).
  virtual WalState load() const = 0;

  /// Cumulative bytes appended over this handle's lifetime (metrics).
  virtual uint64_t bytes_written() const = 0;
  /// Flushes buffered writes to stable storage.
  virtual void sync() {}
};

/// In-memory WAL for the simulator: the cluster harness owns the handle, so
/// it survives the replica object being torn down and rebuilt on restart.
class MemoryWal final : public IReplicaWal {
 public:
  void record_view(ViewNum view) override;
  void record_vote(SeqNum seq, ViewNum view, const Digest& block_digest) override;
  void record_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) override;
  WalState load() const override { return state_; }
  uint64_t bytes_written() const override { return bytes_written_; }

 private:
  WalState state_;
  uint64_t bytes_written_ = 0;
};

/// Compaction policy for FileWal::record_checkpoint.
enum class WalCompaction {
  /// Append one checkpoint record; rewrite the file only when dead records
  /// (superseded checkpoints/views, compacted votes) dominate the live state.
  kIncremental,
  /// Rewrite the whole file at every checkpoint (the pre-incremental
  /// behaviour; kept for comparison benchmarks).
  kFullRewrite,
};

/// Append-only file of framed records:
///   [8-byte magic "SBFTWAL" + version][records...]
///   record := [u32 len][u8 type][payload (len-1 bytes)]
/// A torn tail record (partial write at crash) is ignored on load and
/// truncated away by the next compaction. Later records supersede earlier
/// ones on load (a checkpoint drops votes at or below its sequence), so
/// appending is always safe; the incremental policy bounds the file to a
/// small multiple of the live state.
class FileWal final : public IReplicaWal {
 public:
  explicit FileWal(const std::string& path,
                   WalCompaction compaction = WalCompaction::kIncremental);
  ~FileWal() override;

  FileWal(const FileWal&) = delete;
  FileWal& operator=(const FileWal&) = delete;

  void record_view(ViewNum view) override;
  void record_vote(SeqNum seq, ViewNum view, const Digest& block_digest) override;
  void record_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) override;
  WalState load() const override;
  uint64_t bytes_written() const override { return bytes_written_; }
  void sync() override;

  /// Current size of the on-disk log (live + not-yet-compacted records).
  uint64_t file_bytes() const { return file_bytes_; }

 private:
  void append_record(uint8_t type, ByteSpan payload);
  void rewrite(const WalState& state);
  /// Parses the record stream; fills `state` when non-null. Returns the file
  /// offset just past the last complete, well-formed record.
  long scan(WalState* state) const;

  std::string path_;
  std::FILE* file_ = nullptr;
  WalCompaction compaction_;
  // In-memory mirror of the logical state (what scan() of the file yields);
  // keeps load() O(1) and lets the incremental policy size the live state
  // without re-reading the file.
  WalState state_;
  uint64_t bytes_written_ = 0;
  uint64_t file_bytes_ = 0;
};

}  // namespace sbft::recovery
