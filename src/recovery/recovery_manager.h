// Crash recovery (§VIII): rebuilds a replica's consensus and service state
// from its surviving storage — the WAL (view, stable checkpoint certificate +
// snapshot envelope, in-flight votes) and the block ledger (committed
// decision blocks).
//
// Recovery sequence:
//   1. load the WAL; decode the checkpoint snapshot envelope, restore the
//      service from its state part and verify it against the certificate's
//      state root (a corrupt snapshot aborts recovery — the replica boots
//      fresh and relies on the protocol's state-transfer path instead), and
//      restore the persisted per-client reply cache,
//   2. replay the ledger's contiguous blocks past the checkpoint, re-deriving
//      the chained execution digests d_s and the execution records. Replay
//      consults the restored reply cache, so duplicates of *pre-checkpoint*
//      requests are suppressed exactly as the original execution suppressed
//      them — re-executing a non-idempotent operation (an EVM transfer) would
//      diverge from the certified state roots,
//   3. hand back the recovered view and votes so the replica re-enters the
//      protocol without equivocating on anything it signed pre-crash.
//
// If the local log is behind the cluster's stable checkpoint the replica
// simply recovers to its old position and catches up through the existing
// state-transfer path (triggered on boot for restarted replicas).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "kv/service.h"
#include "recovery/wal.h"
#include "runtime/marker_executor.h"
#include "runtime/membership.h"
#include "runtime/reply_cache.h"
#include "storage/ledger_storage.h"

namespace sbft::recovery {

/// One ledger block re-executed during recovery; carries everything the
/// replica needs to reconstruct its ExecRecord for the sequence.
struct ReplayedBlock {
  SeqNum seq = 0;
  ViewNum view = 0;  // view of the persisted pre-prepare
  Block block;
  ExecCertificate cert;  // re-derived; pi_sig empty (not re-certified)
  std::vector<Bytes> values;
  std::vector<Digest> leaves;
};

struct RecoveredState {
  ViewNum view = 0;
  SeqNum last_stable = 0;
  SeqNum last_executed = 0;
  ExecCertificate checkpoint;  // valid when last_stable > 0
  Bytes snapshot;              // checkpoint snapshot envelope as persisted
  std::map<SeqNum, Digest> exec_digests;  // d_s chain from checkpoint (or genesis)
  std::vector<ReplayedBlock> replayed;
  std::vector<WalVote> votes;  // in-flight votes above last_executed
  std::unique_ptr<IService> service;
  // Reply cache restored from the checkpoint snapshot and advanced through
  // the replayed suffix: serves retries of pre-crash requests and guards
  // against re-executing duplicates.
  runtime::ReplyCache reply_cache;
  uint64_t replayed_bytes = 0;  // encoded bytes re-read from the ledger
  // Snapshot envelope at the highest checkpoint-interval multiple replayed
  // (0 = none): lets the replica re-arm its pending checkpoint snapshot so a
  // certificate arriving post-recovery pairs with consistent state.
  SeqNum snapshot_seq = 0;
  Bytes snapshot_at;
  // Membership as of the crash: restored from the checkpoint envelope's
  // membership section, activated through the stable boundary, and advanced
  // by any reconfiguration markers in the replayed suffix
  // (docs/reconfiguration.md). Unconfigured for pre-membership logs — the
  // replica keeps its bootstrap roster then.
  runtime::MembershipManager membership;
};

class RecoveryManager {
 public:
  /// `checkpoint_interval` > 0 re-captures service snapshots at interval
  /// multiples during replay (pass ProtocolConfig::checkpoint_interval()).
  /// `snapshot_align` is the state-transfer chunk size: re-captured envelopes
  /// must be byte-identical to the ones live execution would have produced
  /// (the delta path compares them across replicas), so replay encodes them
  /// with the same chunk hint and alignment.
  /// `marker_executor` mirrors live execution's marker routing during replay
  /// (cross-shard Prepare/decision requests never touch the service): its
  /// state is restored from the checkpoint envelope's marker section and
  /// advanced through the replayed suffix, exactly like membership.
  RecoveryManager(std::shared_ptr<storage::ILedgerStorage> ledger,
                  std::shared_ptr<IReplicaWal> wal, uint64_t checkpoint_interval = 0,
                  uint32_t snapshot_align = 0,
                  runtime::IMarkerExecutor* marker_executor = nullptr)
      : ledger_(std::move(ledger)),
        wal_(std::move(wal)),
        checkpoint_interval_(checkpoint_interval),
        snapshot_align_(snapshot_align),
        marker_executor_(marker_executor) {}

  /// Rebuilds state from the attached storage. Returns nullopt when there is
  /// nothing to recover (fresh storage) or the snapshot fails verification.
  std::optional<RecoveredState> recover(
      const std::function<std::unique_ptr<IService>()>& service_factory) const;

 private:
  std::shared_ptr<storage::ILedgerStorage> ledger_;
  std::shared_ptr<IReplicaWal> wal_;
  uint64_t checkpoint_interval_ = 0;
  uint32_t snapshot_align_ = 0;
  runtime::IMarkerExecutor* marker_executor_ = nullptr;
};

}  // namespace sbft::recovery
