#include "recovery/recovery_manager.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "merkle/merkle_tree.h"
#include "proto/message.h"
#include "runtime/snapshot.h"

namespace sbft::recovery {

std::optional<RecoveredState> RecoveryManager::recover(
    const std::function<std::unique_ptr<IService>()>& service_factory) const {
  WalState wal_state = wal_ ? wal_->load() : WalState{};
  SeqNum ledger_last = ledger_ ? ledger_->last_seq() : 0;
  if (wal_state.empty() && ledger_last == 0) return std::nullopt;  // fresh boot

  RecoveredState out;
  out.view = wal_state.view;
  out.service = service_factory();
  out.service->set_snapshot_chunk_hint(snapshot_align_);

  // 1. Restore the checkpoint snapshot envelope: the service part verified
  // against the certificate, plus the persisted per-client reply cache.
  if (wal_state.last_stable > 0) {
    auto decoded = runtime::decode_checkpoint_snapshot(as_span(wal_state.snapshot));
    if (!decoded) return std::nullopt;  // corrupt envelope (e.g. cache section)
    if (!out.service->restore(as_span(decoded->service_state))) return std::nullopt;
    if (!(out.service->state_digest() == wal_state.checkpoint.state_root))
      return std::nullopt;  // snapshot does not match the certified root
    out.reply_cache = std::move(decoded->replies);
    if (marker_executor_ != nullptr) {
      // Marker-executor (cross-shard lock/tx) state as of the checkpoint;
      // replay advances it alongside the service and reply cache.
      marker_executor_->restore(as_span(decoded->marker));
    }
    out.last_stable = wal_state.last_stable;
    out.checkpoint = wal_state.checkpoint;
    out.snapshot = wal_state.snapshot;
    out.exec_digests[out.last_stable] = wal_state.checkpoint.exec_digest();
    // Membership as of the stable checkpoint; anything staged there and
    // already past its boundary activated before the crash.
    out.membership.restore(as_span(decoded->membership));
    out.membership.activate_up_to(out.last_stable);
  } else {
    out.exec_digests[0] = genesis_exec_digest();
    // No checkpoint: the executor starts from scratch (its pre-crash state
    // was in volatile memory; replay below rebuilds it from the ledger).
    if (marker_executor_ != nullptr) marker_executor_->restore({});
  }
  out.last_executed = out.last_stable;

  // 2. Replay the contiguous ledger suffix past the checkpoint. Blocks are
  // persisted at execution time, so the ledger extends exactly to the
  // pre-crash last-executed sequence (modulo a torn tail, which load_index
  // already truncated away).
  for (SeqNum s = out.last_executed + 1; ledger_ && s <= ledger_last; ++s) {
    auto encoded = ledger_->read_block(s);
    if (!encoded) break;  // gap: everything beyond is unusable
    auto msg = decode_message(as_span(*encoded));
    if (!msg || !std::holds_alternative<PrePrepareMsg>(*msg)) break;
    const auto& pp = std::get<PrePrepareMsg>(*msg);

    ReplayedBlock rb;
    rb.seq = s;
    rb.view = pp.view;
    rb.block = pp.block;
    for (size_t l = 0; l < rb.block.requests.size(); ++l) {
      const Request& req = rb.block.requests[l];
      Bytes value;
      if (auto delta = decode_reconfig_request(req)) {
        // Reconfiguration marker: re-staged, never executed on the service —
        // replay must mirror live execution byte-for-byte (the leaves and
        // re-captured envelopes feed certified state).
        bool staged = out.membership.stage(*delta, s, checkpoint_interval_);
        value = to_bytes(staged ? "RECONF" : "RECONF-REJECTED");
      } else if (req.client == kReconfigClient) {
        value = to_bytes("RECONF-REJECTED");
      } else if (req.client == kShardTxClient) {
        // Cross-shard decision marker: routed to the marker executor, which
        // dedups by txid (the reply cache never sees this reserved client).
        // Branch order mirrors ReplicaRuntime::execute_block exactly — the
        // values feed the re-derived leaves and exec digests.
        if (marker_executor_ != nullptr && marker_executor_->claims(req)) {
          value = marker_executor_->execute_marker(req, s, *out.service);
        } else {
          value = to_bytes("TX-REJECTED");
        }
      } else if (const runtime::CachedReply* cached =
                     out.reply_cache.find(req.client);
                 cached != nullptr && req.timestamp <= cached->timestamp) {
        // Duplicate of a request already executed — within the suffix or, via
        // the restored cache, before the checkpoint. Must not execute twice.
        value = cached->value;
      } else if (marker_executor_ != nullptr && marker_executor_->claims(req)) {
        // Transaction Prepare from a real client: executed by the marker
        // executor, cached like any client request.
        value = marker_executor_->execute_marker(req, s, *out.service);
        out.reply_cache.store(req.client, req.timestamp, s, l, value);
      } else {
        value = out.service->execute(as_span(req.op));
        out.reply_cache.store(req.client, req.timestamp, s, l, value);
      }
      rb.leaves.push_back(
          exec_leaf(req.client, req.timestamp, crypto::sha256(as_span(value))));
      rb.values.push_back(std::move(value));
    }
    rb.cert.seq = s;
    rb.cert.state_root = out.service->state_digest();
    rb.cert.ops_root = rb.leaves.empty() ? empty_ops_root()
                                         : merkle::BlockMerkleTree(rb.leaves).root();
    rb.cert.prev_exec_digest = out.exec_digests[s - 1];
    out.exec_digests[s] = rb.cert.exec_digest();
    out.last_executed = s;
    out.replayed_bytes += encoded->size();
    out.replayed.push_back(std::move(rb));
    if (checkpoint_interval_ > 0 && s % checkpoint_interval_ == 0) {
      out.snapshot_seq = s;
      Bytes marker =
          marker_executor_ != nullptr ? marker_executor_->snapshot() : Bytes{};
      out.snapshot_at = runtime::encode_checkpoint_snapshot(
          as_span(out.service->snapshot()), out.reply_cache, snapshot_align_,
          as_span(out.membership.encode()), as_span(marker));
    }
  }

  // 3. Surface votes for slots still in flight (not yet executed).
  for (const WalVote& v : wal_state.votes) {
    if (v.seq > out.last_executed) out.votes.push_back(v);
  }
  std::sort(out.votes.begin(), out.votes.end(),
            [](const WalVote& a, const WalVote& b) {
              return a.seq != b.seq ? a.seq < b.seq : a.view < b.view;
            });
  return out;
}

}  // namespace sbft::recovery
