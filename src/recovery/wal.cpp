#include "recovery/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/check.h"
#include "common/serde.h"

namespace sbft::recovery {

namespace {

constexpr char kMagic[8] = {'S', 'B', 'F', 'T', 'W', 'A', 'L', '\x01'};

enum RecordType : uint8_t {
  kView = 1,
  kVote = 2,
  kCheckpoint = 3,
};

Bytes encode_view(ViewNum view) {
  Writer w;
  w.u64(view);
  return std::move(w).take();
}

Bytes encode_vote(SeqNum seq, ViewNum view, const Digest& block_digest) {
  Writer w;
  w.u64(seq);
  w.u64(view);
  w.digest(block_digest);
  return std::move(w).take();
}

Bytes encode_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) {
  Writer w;
  w.bytes(as_span(encode_exec_certificate(cert)));
  w.bytes(snapshot);
  return std::move(w).take();
}

/// Applies one record to the logical state (shared by both implementations'
/// replay paths). Returns false on a malformed payload.
bool apply_record(WalState& state, uint8_t type, ByteSpan payload) {
  Reader r(payload);
  switch (type) {
    case kView: {
      ViewNum v = r.u64();
      if (!r.at_end()) return false;
      state.view = std::max(state.view, v);
      return true;
    }
    case kVote: {
      WalVote vote;
      vote.seq = r.u64();
      vote.view = r.u64();
      vote.block_digest = r.digest();
      if (!r.at_end()) return false;
      state.votes.push_back(vote);
      return true;
    }
    case kCheckpoint: {
      Bytes cert_bytes = r.bytes();
      Bytes snapshot = r.bytes();
      if (!r.at_end()) return false;
      auto cert = decode_exec_certificate(as_span(cert_bytes));
      if (!cert) return false;
      state.checkpoint = *cert;
      state.last_stable = cert->seq;
      state.snapshot = std::move(snapshot);
      // Compaction semantics: the checkpoint supersedes earlier votes.
      state.votes.erase(std::remove_if(state.votes.begin(), state.votes.end(),
                                       [&](const WalVote& v) {
                                         return v.seq <= state.last_stable;
                                       }),
                        state.votes.end());
      return true;
    }
    default:
      return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryWal

void MemoryWal::record_view(ViewNum view) {
  bytes_written_ += 1 + encode_view(view).size();
  state_.view = std::max(state_.view, view);
}

void MemoryWal::record_vote(SeqNum seq, ViewNum view, const Digest& block_digest) {
  bytes_written_ += 1 + encode_vote(seq, view, block_digest).size();
  state_.votes.push_back({seq, view, block_digest});
}

void MemoryWal::record_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) {
  Bytes payload = encode_checkpoint(cert, snapshot);
  bytes_written_ += 1 + payload.size();
  apply_record(state_, kCheckpoint, as_span(payload));
}

// ---------------------------------------------------------------------------
// FileWal

FileWal::FileWal(const std::string& path, WalCompaction compaction)
    : path_(path), compaction_(compaction) {
  file_ = std::fopen(path.c_str(), "ab+");
  if (!file_) throw std::runtime_error("FileWal: cannot open " + path);
  // Truncate a torn tail record (crash mid-append) so new appends land on a
  // record boundary instead of extending the garbage. A file whose magic
  // itself is short or corrupt restarts as a fresh log — the magic must be
  // rewritten, or every future append would sit after a headerless prefix,
  // invisible to load() and destroyed on the next open.
  long valid = scan(&state_);
  std::fseek(file_, 0, SEEK_END);
  if (valid < std::ftell(file_)) {
    SBFT_CHECK(::ftruncate(fileno(file_), valid) == 0);
    std::fseek(file_, 0, SEEK_END);
  }
  if (valid == 0) {
    state_ = WalState{};
    SBFT_CHECK(std::fwrite(kMagic, 1, sizeof(kMagic), file_) == sizeof(kMagic));
    std::fflush(file_);
    valid = sizeof(kMagic);
  }
  file_bytes_ = static_cast<uint64_t>(valid);
}

FileWal::~FileWal() {
  if (file_) std::fclose(file_);
}

void FileWal::append_record(uint8_t type, ByteSpan payload) {
  Writer w;
  w.u32(static_cast<uint32_t>(payload.size() + 1));
  w.u8(type);
  w.raw(payload);
  std::fseek(file_, 0, SEEK_END);
  SBFT_CHECK(std::fwrite(w.data().data(), 1, w.size(), file_) == w.size());
  // Write-ahead contract: the record must be durable before the caller acts
  // on it (e.g. emits the sign-share the vote describes).
  std::fflush(file_);
  bytes_written_ += w.size();
  file_bytes_ += w.size();
}

void FileWal::record_view(ViewNum view) {
  Bytes payload = encode_view(view);
  append_record(kView, as_span(payload));
  apply_record(state_, kView, as_span(payload));
}

void FileWal::record_vote(SeqNum seq, ViewNum view, const Digest& block_digest) {
  Bytes payload = encode_vote(seq, view, block_digest);
  append_record(kVote, as_span(payload));
  apply_record(state_, kVote, as_span(payload));
}

void FileWal::record_checkpoint(const ExecCertificate& cert, ByteSpan snapshot) {
  Bytes payload = encode_checkpoint(cert, snapshot);
  apply_record(state_, kCheckpoint, as_span(payload));
  if (compaction_ == WalCompaction::kFullRewrite) {
    rewrite(state_);
    return;
  }
  // Incremental: append the one record — loaders treat it as superseding
  // earlier checkpoints and votes at or below its sequence — and rewrite
  // only when dead records dominate the live state. Frame sizes are derived
  // from the encoders so the threshold stays in sync with the format.
  append_record(kCheckpoint, payload);
  static const uint64_t kFrameHeader = 4 + 1;  // [u32 len][u8 type]
  static const uint64_t kViewFrame = kFrameHeader + encode_view(0).size();
  static const uint64_t kVoteFrame =
      kFrameHeader + encode_vote(0, 0, Digest{}).size();
  uint64_t live = sizeof(kMagic) + (state_.view > 0 ? kViewFrame : 0) +
                  kFrameHeader + payload.size() +
                  state_.votes.size() * kVoteFrame;
  if (file_bytes_ > 2 * live + 4096) rewrite(state_);
}

void FileWal::rewrite(const WalState& state) {
  // Compaction: serialize the logical state into a fresh file and rename it
  // over the old log, so a crash mid-compaction leaves one valid log behind.
  std::string tmp = path_ + ".compact";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (!out) throw std::runtime_error("FileWal: cannot open " + tmp);
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic)});
  auto frame = [&w](uint8_t type, ByteSpan payload) {
    w.u32(static_cast<uint32_t>(payload.size() + 1));
    w.u8(type);
    w.raw(payload);
  };
  if (state.view > 0) frame(kView, as_span(encode_view(state.view)));
  if (state.last_stable > 0)
    frame(kCheckpoint, as_span(encode_checkpoint(state.checkpoint, as_span(state.snapshot))));
  for (const WalVote& v : state.votes)
    frame(kVote, as_span(encode_vote(v.seq, v.view, v.block_digest)));
  SBFT_CHECK(std::fwrite(w.data().data(), 1, w.size(), out) == w.size());
  std::fflush(out);
  std::fclose(out);
  std::fclose(file_);
  file_ = nullptr;  // keep the destructor off the closed stream if we throw
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw std::runtime_error("FileWal: rename failed for " + path_);
  file_ = std::fopen(path_.c_str(), "ab+");
  if (!file_) throw std::runtime_error("FileWal: cannot reopen " + path_);
  bytes_written_ += w.size();
  file_bytes_ = w.size();
}

WalState FileWal::load() const { return state_; }

long FileWal::scan(WalState* state) const {
  std::fflush(file_);
  std::fseek(file_, 0, SEEK_END);
  long size = std::ftell(file_);
  if (size < static_cast<long>(sizeof(kMagic))) return 0;
  Bytes raw(static_cast<size_t>(size));
  std::rewind(file_);
  size_t got = std::fread(raw.data(), 1, raw.size(), file_);
  std::fseek(file_, 0, SEEK_END);
  if (got != raw.size()) return 0;
  if (std::memcmp(raw.data(), kMagic, sizeof(kMagic)) != 0) return 0;

  size_t pos = sizeof(kMagic);
  while (pos + 4 <= raw.size()) {
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(raw[pos + i]) << (8 * i);
    if (len == 0 || pos + 4 + len > raw.size()) break;  // torn tail record
    uint8_t type = raw[pos + 4];
    ByteSpan payload{raw.data() + pos + 5, len - 1};
    WalState scratch;
    if (!apply_record(state ? *state : scratch, type, payload)) break;  // corrupt
    pos += 4 + len;
  }
  return static_cast<long>(pos);
}

void FileWal::sync() { std::fflush(file_); }

}  // namespace sbft::recovery
