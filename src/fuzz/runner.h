// Byzantine schedule fuzzing (docs/fuzzing.md): the schedule runner.
//
// Executes one Schedule against a freshly built harness::Cluster: schedules
// every fault event on the simulator, heals *everything* at the fault
// horizon (link faults cleared, crashed replicas restarted), drives the
// client workload to completion, lets the cluster settle, and then runs the
// full oracle stack — committed-block agreement, trace-derived invariants
// (obs::TraceChecker), state-root convergence, reply-cache consistency, and
// the liveness bound. A run is a failure iff `violations` is non-empty.
//
// Fault application is *guarded*: an event that no longer makes sense in the
// current cluster state (restarting a live replica, crashing past the f+1
// budget, reconfiguring a degraded cluster) is skipped rather than applied.
// The guards make every sub-schedule of a valid schedule valid too, which is
// what lets delta-debugging minimization (fuzz/minimize.h) drop events
// freely without manufacturing liveness failures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/schedule.h"

namespace sbft::fuzz {

struct FuzzResult {
  /// Oracle violations, each prefixed with the audit that found it
  /// ("liveness:", "agreement:", "trace:", "convergence:", "replycache:").
  std::vector<std::string> violations;
  bool completed = false;       // all clients finished before the deadline
  SeqNum max_executed = 0;
  uint64_t view_changes = 0;
  uint64_t recoveries = 0;
  int64_t sim_end_us = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

/// Runs the schedule to completion and audits the outcome. Deterministic:
/// the same schedule always produces the same FuzzResult.
FuzzResult run_schedule(const Schedule& schedule);

}  // namespace sbft::fuzz
