#include "fuzz/schedule.h"

#include <algorithm>
#include <sstream>

#include "common/rng.h"

namespace sbft::fuzz {

namespace {

struct KindName {
  FaultKind kind;
  const char* name;
};
constexpr KindName kKindNames[] = {
    {FaultKind::kCrash, "crash"},
    {FaultKind::kRestart, "restart"},
    {FaultKind::kPartition, "partition"},
    {FaultKind::kHeal, "heal"},
    {FaultKind::kDropWindow, "drop"},
    {FaultKind::kDelay, "delay"},
    {FaultKind::kReorder, "reorder"},
    {FaultKind::kCensorLink, "censor"},
    {FaultKind::kReconfig, "reconfig"},
};

const char* protocol_token(harness::ProtocolKind kind) {
  switch (kind) {
    case harness::ProtocolKind::kPbft: return "pbft";
    case harness::ProtocolKind::kLinearPbft: return "linear_pbft";
    case harness::ProtocolKind::kLinearPbftFast: return "linear_pbft_fast";
    case harness::ProtocolKind::kSbft: return "sbft";
  }
  return "?";
}

std::optional<harness::ProtocolKind> protocol_from_token(const std::string& t) {
  if (t == "pbft") return harness::ProtocolKind::kPbft;
  if (t == "linear_pbft") return harness::ProtocolKind::kLinearPbft;
  if (t == "linear_pbft_fast") return harness::ProtocolKind::kLinearPbftFast;
  if (t == "sbft") return harness::ProtocolKind::kSbft;
  return std::nullopt;
}

const char* behavior_token(core::ReplicaBehavior b) {
  switch (b) {
    case core::ReplicaBehavior::kHonest: return "honest";
    case core::ReplicaBehavior::kSilent: return "silent";
    case core::ReplicaBehavior::kEquivocate: return "equivocate";
    case core::ReplicaBehavior::kCorruptShares: return "corrupt_shares";
    case core::ReplicaBehavior::kCensor: return "censor";
  }
  return "?";
}

std::optional<core::ReplicaBehavior> behavior_from_token(const std::string& t) {
  if (t == "honest") return core::ReplicaBehavior::kHonest;
  if (t == "silent") return core::ReplicaBehavior::kSilent;
  if (t == "equivocate") return core::ReplicaBehavior::kEquivocate;
  if (t == "corrupt_shares") return core::ReplicaBehavior::kCorruptShares;
  if (t == "censor") return core::ReplicaBehavior::kCensor;
  return std::nullopt;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  for (const KindName& k : kKindNames) {
    if (k.kind == kind) return k.name;
  }
  return "?";
}

std::optional<FaultKind> fault_kind_from_name(const std::string& name) {
  for (const KindName& k : kKindNames) {
    if (name == k.name) return k.kind;
  }
  return std::nullopt;
}

std::string Schedule::to_text() const {
  std::ostringstream out;
  out << "# sbft-fuzz schedule v1\n";
  out << "seed " << seed << "\n";
  out << "protocol " << protocol_token(topology.kind) << "\n";
  out << "f " << topology.f << "\n";
  out << "c " << topology.c << "\n";
  out << "clients " << topology.clients << "\n";
  out << "requests " << topology.requests_per_client << "\n";
  out << "cores " << topology.cores << "\n";
  out << "byzantine " << topology.byzantine << " "
      << behavior_token(topology.byz_behavior) << "\n";
  out << "service " << (topology.service == 0 ? "fastkv" : "kv") << "\n";
  out << "cluster_seed " << topology.cluster_seed << "\n";
  out << "horizon_us " << fault_horizon_us << "\n";
  out << "settle_us " << settle_us << "\n";
  out << "deadline_us " << liveness_deadline_us << "\n";
  for (const FaultEvent& e : events) {
    out << "event " << e.at_us << " " << fault_kind_name(e.kind) << " " << e.a
        << " " << e.b << " " << e.c << "\n";
  }
  return out.str();
}

std::optional<Schedule> Schedule::from_text(const std::string& text) {
  Schedule s;
  std::istringstream in(text);
  std::string line;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank
    if (key == "seed") {
      if (!(ls >> s.seed)) return std::nullopt;
      saw_seed = true;
    } else if (key == "protocol") {
      std::string t;
      if (!(ls >> t)) return std::nullopt;
      auto kind = protocol_from_token(t);
      if (!kind) return std::nullopt;
      s.topology.kind = *kind;
    } else if (key == "f") {
      if (!(ls >> s.topology.f)) return std::nullopt;
    } else if (key == "c") {
      if (!(ls >> s.topology.c)) return std::nullopt;
    } else if (key == "clients") {
      if (!(ls >> s.topology.clients)) return std::nullopt;
    } else if (key == "requests") {
      if (!(ls >> s.topology.requests_per_client)) return std::nullopt;
    } else if (key == "cores") {
      if (!(ls >> s.topology.cores)) return std::nullopt;
    } else if (key == "byzantine") {
      std::string t;
      if (!(ls >> s.topology.byzantine >> t)) return std::nullopt;
      auto b = behavior_from_token(t);
      if (!b) return std::nullopt;
      s.topology.byz_behavior = *b;
    } else if (key == "service") {
      std::string t;
      if (!(ls >> t)) return std::nullopt;
      if (t == "fastkv") {
        s.topology.service = 0;
      } else if (t == "kv") {
        s.topology.service = 1;
      } else {
        return std::nullopt;
      }
    } else if (key == "cluster_seed") {
      if (!(ls >> s.topology.cluster_seed)) return std::nullopt;
    } else if (key == "horizon_us") {
      if (!(ls >> s.fault_horizon_us)) return std::nullopt;
    } else if (key == "settle_us") {
      if (!(ls >> s.settle_us)) return std::nullopt;
    } else if (key == "deadline_us") {
      if (!(ls >> s.liveness_deadline_us)) return std::nullopt;
    } else if (key == "event") {
      FaultEvent e;
      std::string kind;
      if (!(ls >> e.at_us >> kind >> e.a >> e.b >> e.c)) return std::nullopt;
      auto k = fault_kind_from_name(kind);
      if (!k) return std::nullopt;
      e.kind = *k;
      s.events.push_back(e);
    } else {
      return std::nullopt;  // unknown key: refuse rather than misreplay
    }
  }
  if (!saw_seed) return std::nullopt;
  std::stable_sort(
      s.events.begin(), s.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_us < b.at_us; });
  return s;
}

std::string Schedule::summary() const {
  std::ostringstream out;
  out << "seed=" << seed << " " << protocol_token(topology.kind)
      << " f=" << topology.f << " c=" << topology.c << " clients="
      << topology.clients << "x" << topology.requests_per_client;
  if (topology.byzantine > 0) {
    out << " byz=" << topology.byzantine << "("
        << behavior_token(topology.byz_behavior) << ")";
  }
  out << " svc=" << (topology.service == 0 ? "fastkv" : "kv") << " cores="
      << topology.cores << " events=" << events.size() << " horizon="
      << fault_horizon_us / 1000 << "ms";
  return out.str();
}

// ---------------------------------------------------------------------------
// Generation

Schedule ScheduleFuzzer::generate(uint64_t seed) const {
  Rng rng(seed ^ 0xf0225eedull);
  Schedule s;
  s.seed = seed;

  // --- topology --------------------------------------------------------------
  ScheduleTopology& t = s.topology;
  uint64_t proto = rng.below(100);
  if (proto < 40) {
    t.kind = harness::ProtocolKind::kSbft;
  } else if (proto < 60) {
    t.kind = harness::ProtocolKind::kLinearPbftFast;
  } else if (proto < 80) {
    t.kind = harness::ProtocolKind::kLinearPbft;
  } else {
    t.kind = harness::ProtocolKind::kPbft;
  }
  t.f = rng.below(4) == 0 ? 2 : 1;
  // Keep n <= 7: f=2 runs always use c=0, f=1 runs draw c in {0, 1}.
  t.c = (t.kind == harness::ProtocolKind::kSbft && t.f == 1 && rng.below(10) < 3)
            ? 1
            : 0;
  t.clients = 2 + static_cast<uint32_t>(rng.below(3));
  t.requests_per_client =
      limits_.min_requests +
      rng.below(limits_.max_requests - limits_.min_requests + 1);
  t.cores = rng.below(4) == 0 ? 2 : 1;
  // Byzantine behaviours live in the SBFT engine; the PBFT baseline only
  // sees crash/network faults (harness::Cluster enforces this).
  if (t.kind != harness::ProtocolKind::kPbft && rng.below(10) < 4) {
    t.byzantine = 1;  // <= f always
    switch (rng.below(4)) {
      case 0: t.byz_behavior = core::ReplicaBehavior::kSilent; break;
      case 1: t.byz_behavior = core::ReplicaBehavior::kEquivocate; break;
      case 2: t.byz_behavior = core::ReplicaBehavior::kCorruptShares; break;
      default: t.byz_behavior = core::ReplicaBehavior::kCensor; break;
    }
  }
  t.service = rng.below(10) < 3 ? 1 : 0;
  t.cluster_seed = rng.next() | 1;

  const uint32_t n = t.n();
  s.fault_horizon_us =
      limits_.min_horizon_us +
      static_cast<int64_t>(rng.below(
          static_cast<uint64_t>(limits_.max_horizon_us - limits_.min_horizon_us)));

  // --- reconfiguration (at most one; always the first fault) -----------------
  // The ReconfigBlockMsg is injected to the *current primary's* pending queue
  // only, so it must be submitted while the cluster is fault-free — the
  // generator places it first with a quiet window behind it, and the runner
  // additionally skips it if anything is down when it fires.
  int64_t chaos_from = 200'000;
  bool reconfig_planned = false;
  if (t.c == 0 && rng.below(100) < 22) {
    FaultEvent rc;
    rc.kind = FaultKind::kReconfig;
    rc.at_us = s.fault_horizon_us / 5 +
               static_cast<int64_t>(rng.below(
                   static_cast<uint64_t>(s.fault_horizon_us / 5) + 1));
    rc.a = t.f == 1 ? 0 : 1;  // grow 4 -> 7 at f=1, shrink 7 -> 4 at f=2
    s.events.push_back(rc);
    chaos_from = rc.at_us + 3'500'000;
    s.fault_horizon_us = std::max(s.fault_horizon_us, chaos_from + 2'000'000);
    reconfig_planned = true;
  }

  // --- composed fault events -------------------------------------------------
  uint32_t count =
      limits_.min_events +
      static_cast<uint32_t>(
          rng.below(limits_.max_events - limits_.min_events + 1));
  std::vector<int64_t> times;
  for (uint32_t i = 0; i < count; ++i) {
    times.push_back(chaos_from +
                    static_cast<int64_t>(rng.below(static_cast<uint64_t>(
                        s.fault_horizon_us - chaos_from))));
  }
  std::sort(times.begin(), times.end());

  // Walk the times in order with a model of which replicas are down, so
  // restarts target actually-crashed replicas and no more than f+1 replicas
  // are ever down at once (the heal phase restarts stragglers regardless).
  std::vector<ReplicaId> down;
  auto any_up_replica = [&](Rng& r) {
    for (int tries = 0; tries < 8; ++tries) {
      ReplicaId cand = 1 + static_cast<ReplicaId>(r.below(n));
      if (std::find(down.begin(), down.end(), cand) == down.end()) return cand;
    }
    return static_cast<ReplicaId>(0);
  };

  for (int64_t at : times) {
    FaultEvent e;
    e.at_us = at;
    uint64_t roll = rng.below(100);
    if (roll < 30) {
      // Crash (falls back to restart when the crash budget is exhausted).
      ReplicaId victim = down.size() < t.f + 1 ? any_up_replica(rng) : 0;
      if (victim != 0) {
        e.kind = FaultKind::kCrash;
        e.a = victim;
        down.push_back(victim);
      } else if (!down.empty()) {
        e.kind = FaultKind::kRestart;
        e.a = down[rng.below(down.size())];
        e.b = rng.below(10) < 3 ? 1 : 0;  // wipe
        down.erase(std::find(down.begin(), down.end(), static_cast<ReplicaId>(e.a)));
      } else {
        continue;
      }
    } else if (roll < 52) {
      // Restart one downed replica (or crash one when none is down).
      if (!down.empty()) {
        e.kind = FaultKind::kRestart;
        e.a = down[rng.below(down.size())];
        e.b = rng.below(10) < 3 ? 1 : 0;
        down.erase(std::find(down.begin(), down.end(), static_cast<ReplicaId>(e.a)));
      } else {
        ReplicaId victim = any_up_replica(rng);
        if (victim == 0) continue;
        e.kind = FaultKind::kCrash;
        e.a = victim;
        down.push_back(victim);
      }
    } else if (roll < 66) {
      e.kind = FaultKind::kPartition;
      uint32_t side = 1 + static_cast<uint32_t>(rng.below(t.f + 1));
      uint64_t mask = 0;
      for (uint32_t i = 0; i < side; ++i) {
        mask |= 1ull << rng.below(n);  // duplicates just shrink the side
      }
      e.a = mask;
    } else if (roll < 76) {
      e.kind = FaultKind::kHeal;
    } else if (roll < 84) {
      e.kind = FaultKind::kDropWindow;
      e.a = 50 + rng.below(250);               // 5% .. 30% drop
      e.b = 200'000 + rng.below(1'800'000);    // up to 2s
    } else if (roll < 90) {
      e.kind = FaultKind::kDelay;
      e.a = 1 + rng.below(n);
      e.b = 5'000 + rng.below(95'000);         // 5ms .. 100ms extra latency
      e.c = 300'000 + rng.below(2'700'000);    // up to 3s
    } else if (roll < 96) {
      e.kind = FaultKind::kReorder;
      e.a = 100 + rng.below(400);              // 10% .. 50% of messages
      e.b = 2'000 + rng.below(48'000);         // up to 50ms extra delay
      e.c = 300'000 + rng.below(2'700'000);
    } else {
      e.kind = FaultKind::kCensorLink;
      e.a = 1 + rng.below(n);                   // replica
      e.b = rng.below(t.clients);               // client index
      e.c = 500'000 + rng.below(2'500'000);
    }
    s.events.push_back(e);
  }

  std::stable_sort(
      s.events.begin(), s.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at_us < b.at_us; });

  s.settle_us = 10'000'000;
  s.liveness_deadline_us = s.fault_horizon_us + 390'000'000;
  (void)reconfig_planned;
  return s;
}

}  // namespace sbft::fuzz
