// Byzantine schedule fuzzing (docs/fuzzing.md): campaign driver.
//
// Runs a batch of seeds through generate -> run -> audit; on failure,
// delta-debugs the schedule down (fuzz/minimize.h) and writes a replayable
// repro file (the Schedule text format plus the violations as comments).
// Emits one JSON line per run for tools/fuzz_triage.py. The campaign is the
// engine behind bench_fuzz_campaign (CLI), the `ctest -L fuzz` smoke tests,
// and the scheduled CI long-run job.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/runner.h"
#include "fuzz/schedule.h"

namespace sbft::fuzz {

struct CampaignOptions {
  uint64_t seed_base = 1;
  uint64_t num_seeds = 25;
  /// > 0: keep drawing seeds (from seed_base) until this much wall-clock time
  /// elapsed, ignoring num_seeds — the CI long-run mode.
  int64_t wall_clock_budget_ms = 0;
  /// Directory for repro files of failing seeds ("" = don't write any).
  std::string repro_dir;
  bool minimize = true;
  uint32_t minimize_budget = 48;
  FuzzLimits limits;
  /// One JSON line per run (and per failure) when set.
  std::ostream* log = nullptr;
};

struct CampaignReport {
  uint64_t runs = 0;
  uint64_t failures = 0;
  std::vector<uint64_t> failing_seeds;
  std::vector<std::string> repro_paths;  // parallel to failing_seeds when written

  bool ok() const { return failures == 0; }
};

/// Runs the campaign. Deterministic for a fixed (seed_base, num_seeds,
/// limits) when wall_clock_budget_ms == 0.
CampaignReport run_campaign(const CampaignOptions& options);

/// Serializes a failing run into the repro text: the minimized schedule with
/// the violations and the original event count recorded as comments.
std::string make_repro_text(const Schedule& minimized, const FuzzResult& result,
                            size_t original_events);

/// Loads a repro/schedule file and re-runs it. Returns false (with *error
/// set) if the file is missing or malformed; *result receives the re-run
/// outcome otherwise.
bool replay_file(const std::string& path, FuzzResult* result,
                 std::string* error);

}  // namespace sbft::fuzz
