// Byzantine schedule fuzzing (docs/fuzzing.md): the schedule model.
//
// A Schedule is everything one fuzz run needs, derived deterministically from
// a single 64-bit seed: the cluster topology (protocol variant, f/c, client
// population, service, cores, construction-time Byzantine behaviours) and a
// time-ordered list of composed fault events (crash/restart/wipe, partitions
// and heals, drop/delay/reorder windows, link-level censorship, group
// reconfiguration). Schedules serialize to a line-oriented text format — the
// repro file the campaign driver writes on failure and `ctest -L fuzz`
// replays — and the format is canonical: parse(to_text(s)).to_text() ==
// s.to_text(), and two runs of the same seed produce byte-identical text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/replica.h"
#include "harness/cluster.h"

namespace sbft::fuzz {

/// Fault vocabulary. Every event carries up to three integer operands whose
/// meaning depends on the kind (see the field comments).
enum class FaultKind : uint8_t {
  kCrash,       // a = replica id
  kRestart,     // a = replica id, b = wipe storage (0/1)
  kPartition,   // a = bitmask of replica ids (bit r-1) isolated from the rest
  kHeal,        // clear every link-level fault
  kDropWindow,  // a = drop probability (permille), b = duration us
  kDelay,       // a = replica id, b = extra one-way latency us, c = duration us
  kReorder,     // a = probability (permille), b = max extra us, c = duration us
  kCensorLink,  // a = replica id, b = client index, c = duration us
                // (directional blackhole client -> replica)
  kReconfig,    // a = 0 grow (f 1->2, add 3 replicas), 1 shrink (f 2->1)
};

const char* fault_kind_name(FaultKind kind);
std::optional<FaultKind> fault_kind_from_name(const std::string& name);

struct FaultEvent {
  int64_t at_us = 0;
  FaultKind kind = FaultKind::kCrash;
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;

  bool operator==(const FaultEvent&) const = default;
};

/// Cluster shape for one run (all derived from the seed).
struct ScheduleTopology {
  harness::ProtocolKind kind = harness::ProtocolKind::kSbft;
  uint32_t f = 1;
  uint32_t c = 0;
  uint32_t clients = 2;
  uint64_t requests_per_client = 20;
  uint32_t cores = 1;
  uint32_t byzantine = 0;  // construction-time Byzantine replicas (<= f)
  core::ReplicaBehavior byz_behavior = core::ReplicaBehavior::kHonest;
  uint32_t service = 0;  // 0 = FastKvService, 1 = KvService (Merkle-auth KV)
  uint64_t cluster_seed = 1;

  uint32_t n() const { return 3 * f + 2 * c + 1; }
  bool operator==(const ScheduleTopology&) const = default;
};

struct Schedule {
  uint64_t seed = 0;  // generator seed (0 for hand-built schedules)
  ScheduleTopology topology;
  std::vector<FaultEvent> events;  // sorted by at_us (stable)
  int64_t fault_horizon_us = 4'000'000;   // heal-everything time
  int64_t settle_us = 10'000'000;         // post-completion convergence window
  int64_t liveness_deadline_us = 400'000'000;

  /// Canonical repro serialization (docs/fuzzing.md lists the grammar).
  std::string to_text() const;
  /// nullopt on malformed input; ignores blank lines and '#' comments.
  static std::optional<Schedule> from_text(const std::string& text);
  /// One-line human summary ("seed=7 SBFT f=1 c=1 ... 6 events").
  std::string summary() const;
};

/// Bounds the generator draws within (exposed so tests can tighten them).
struct FuzzLimits {
  uint32_t min_events = 3;
  uint32_t max_events = 12;
  uint64_t min_requests = 12;
  uint64_t max_requests = 40;
  int64_t min_horizon_us = 2'000'000;
  int64_t max_horizon_us = 8'000'000;
};

/// Derives a complete Schedule from one 64-bit seed. Pure function: the same
/// seed (and limits) always yields the same schedule, and every stochastic
/// choice flows from the seed through one Rng stream.
class ScheduleFuzzer {
 public:
  explicit ScheduleFuzzer(FuzzLimits limits = {}) : limits_(limits) {}

  Schedule generate(uint64_t seed) const;

 private:
  FuzzLimits limits_;
};

}  // namespace sbft::fuzz
