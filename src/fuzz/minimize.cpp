#include "fuzz/minimize.h"

#include <algorithm>

#include "fuzz/runner.h"

namespace sbft::fuzz {

Schedule minimize_schedule(const Schedule& failing,
                           const FailurePredicate& fails, uint32_t max_runs,
                           MinimizeStats* stats) {
  MinimizeStats local;
  Schedule current = failing;
  size_t granularity = 2;

  while (current.events.size() >= 2 && local.runs < max_runs) {
    const size_t count = current.events.size();
    granularity = std::min(granularity, count);
    const size_t chunk = (count + granularity - 1) / granularity;

    bool reduced = false;
    for (size_t start = 0; start < count && local.runs < max_runs;
         start += chunk) {
      // Complement test: drop events [start, start+chunk) and re-run.
      Schedule candidate = current;
      candidate.events.erase(
          candidate.events.begin() + static_cast<ptrdiff_t>(start),
          candidate.events.begin() +
              static_cast<ptrdiff_t>(std::min(start + chunk, count)));
      ++local.runs;
      if (fails(candidate)) {
        current = std::move(candidate);
        granularity = std::max<size_t>(granularity - 1, 2);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= count) {
        local.reached_fixpoint = true;  // 1-minimal: no single event removable
        break;
      }
      granularity = std::min(granularity * 2, count);
    }
  }
  if (current.events.size() < 2) local.reached_fixpoint = true;

  if (stats != nullptr) *stats = local;
  return current;
}

Schedule minimize_schedule(const Schedule& failing, uint32_t max_runs,
                           MinimizeStats* stats) {
  return minimize_schedule(
      failing, [](const Schedule& s) { return !run_schedule(s).ok(); },
      max_runs, stats);
}

}  // namespace sbft::fuzz
