#include "fuzz/campaign.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>

#include "fuzz/minimize.h"

namespace sbft::fuzz {

namespace {

std::string json_escape(const std::string& in) {
  std::string out;
  for (char c : in) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void log_run(std::ostream* log, uint64_t seed, const Schedule& schedule,
             const FuzzResult& result, const std::string& repro_path) {
  if (log == nullptr) return;
  *log << "{\"seed\":" << seed << ",\"ok\":" << (result.ok() ? "true" : "false")
       << ",\"completed\":" << (result.completed ? "true" : "false")
       << ",\"executed\":" << result.max_executed
       << ",\"view_changes\":" << result.view_changes
       << ",\"recoveries\":" << result.recoveries
       << ",\"events\":" << schedule.events.size() << ",\"schedule\":\""
       << json_escape(schedule.summary()) << "\"";
  if (!result.ok()) {
    *log << ",\"violations\":[";
    for (size_t i = 0; i < result.violations.size(); ++i) {
      if (i > 0) *log << ",";
      *log << "\"" << json_escape(result.violations[i]) << "\"";
    }
    *log << "]";
    if (!repro_path.empty()) {
      *log << ",\"repro\":\"" << json_escape(repro_path) << "\"";
    }
  }
  *log << "}\n" << std::flush;
}

}  // namespace

std::string make_repro_text(const Schedule& minimized, const FuzzResult& result,
                            size_t original_events) {
  std::ostringstream out;
  out << "# fuzz repro: " << minimized.summary() << "\n";
  out << "# minimized from " << original_events << " to "
      << minimized.events.size() << " event(s)\n";
  for (const std::string& v : result.violations) {
    out << "# violation: " << v << "\n";
  }
  out << minimized.to_text();
  return out.str();
}

CampaignReport run_campaign(const CampaignOptions& options) {
  CampaignReport report;
  ScheduleFuzzer fuzzer(options.limits);
  const auto start = std::chrono::steady_clock::now();
  auto budget_left = [&] {
    if (options.wall_clock_budget_ms <= 0) return true;
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    return elapsed < options.wall_clock_budget_ms;
  };

  for (uint64_t i = 0;; ++i) {
    if (options.wall_clock_budget_ms > 0) {
      if (!budget_left()) break;
    } else if (i >= options.num_seeds) {
      break;
    }
    const uint64_t seed = options.seed_base + i;
    Schedule schedule = fuzzer.generate(seed);
    FuzzResult result = run_schedule(schedule);
    ++report.runs;

    std::string repro_path;
    if (!result.ok()) {
      ++report.failures;
      report.failing_seeds.push_back(seed);
      Schedule minimized = schedule;
      if (options.minimize && !schedule.events.empty()) {
        minimized = minimize_schedule(schedule, options.minimize_budget);
      }
      if (!options.repro_dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(options.repro_dir, ec);
        repro_path =
            options.repro_dir + "/seed-" + std::to_string(seed) + ".sched";
        std::ofstream out(repro_path);
        if (out) {
          out << make_repro_text(minimized, result, schedule.events.size());
          report.repro_paths.push_back(repro_path);
        } else {
          repro_path.clear();
        }
      }
    }
    log_run(options.log, seed, schedule, result, repro_path);
  }
  return report;
}

bool replay_file(const std::string& path, FuzzResult* result,
                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::optional<Schedule> schedule = Schedule::from_text(buf.str());
  if (!schedule) {
    if (error != nullptr) *error = "malformed schedule in " + path;
    return false;
  }
  *result = run_schedule(*schedule);
  return true;
}

}  // namespace sbft::fuzz
