// Byzantine schedule fuzzing (docs/fuzzing.md): delta-debugging minimizer.
//
// Given a failing schedule, ddmin shrinks its fault-event list to a locally
// minimal subset that still fails: it repeatedly partitions the events into
// chunks and tests each chunk's complement, re-running the schedule through
// the real runner (or any injected predicate — the self-tests use synthetic
// ones). Because the runner guards every fault application, any sub-schedule
// of a valid schedule is itself valid, so dropping events never manufactures
// a new failure mode by breaking schedule well-formedness.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/schedule.h"

namespace sbft::fuzz {

/// True iff the candidate schedule still fails (still reproduces the bug).
using FailurePredicate = std::function<bool(const Schedule&)>;

struct MinimizeStats {
  uint32_t runs = 0;           // predicate evaluations spent
  bool reached_fixpoint = false;  // false: stopped on the run budget instead
};

/// ddmin over `failing.events` with an injected predicate. The input is
/// assumed to fail (it is not re-tested). Returns the minimized schedule;
/// topology and time bounds are never altered.
Schedule minimize_schedule(const Schedule& failing,
                           const FailurePredicate& fails,
                           uint32_t max_runs = 48,
                           MinimizeStats* stats = nullptr);

/// Convenience overload: the predicate is "run_schedule reports violations".
Schedule minimize_schedule(const Schedule& failing, uint32_t max_runs = 48,
                           MinimizeStats* stats = nullptr);

}  // namespace sbft::fuzz
