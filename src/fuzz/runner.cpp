#include "fuzz/runner.h"

#include <memory>
#include <set>
#include <sstream>

#include "harness/cluster.h"
#include "kv/kv_service.h"

namespace sbft::fuzz {

namespace {

/// Mutable per-run state shared by the scheduled fault lambdas.
struct RunState {
  harness::Cluster* cluster = nullptr;
  uint32_t genesis_f = 0;
  uint32_t genesis_n = 0;
  std::set<NodeId> delayed_nodes;  // nodes with an active kDelay window
  bool partition_active = false;
  bool reconfigured = false;

  uint32_t replicas_down() const {
    uint32_t down = 0;
    for (ReplicaId r = 1; r <= cluster->num_replicas(); ++r) {
      if (cluster->network().crashed(cluster->replica(r).node())) ++down;
    }
    return down;
  }

  /// Clears every link fault and node-delay window (kHeal and the horizon).
  void heal_links() {
    cluster->heal_partitions();
    for (NodeId node : delayed_nodes) {
      cluster->network().set_extra_latency(node, 0);
    }
    delayed_nodes.clear();
    partition_active = false;
  }
};

void apply_event(RunState& st, const FaultEvent& e) {
  harness::Cluster& c = *st.cluster;
  sim::Network& net = c.network();
  switch (e.kind) {
    case FaultKind::kCrash: {
      ReplicaId r = static_cast<ReplicaId>(e.a);
      if (r < 1 || r > c.num_replicas()) return;
      if (net.crashed(c.replica(r).node())) return;
      // Never exceed the f+1 crash budget the generator promises; a minimized
      // schedule may have lost the restart that kept the budget balanced.
      if (st.replicas_down() >= st.genesis_f + 1) return;
      c.crash_replica(r);
      break;
    }
    case FaultKind::kRestart: {
      ReplicaId r = static_cast<ReplicaId>(e.a);
      if (r < 1 || r > c.num_replicas()) return;
      if (!net.crashed(c.replica(r).node())) return;
      c.restart_replica(r, e.b != 0);
      break;
    }
    case FaultKind::kPartition: {
      std::vector<ReplicaId> side;
      for (ReplicaId r = 1; r <= c.num_replicas() && r <= 64; ++r) {
        if (e.a & (1ull << (r - 1))) side.push_back(r);
      }
      if (side.empty() || side.size() >= c.num_replicas()) return;
      c.partition(side);
      st.partition_active = true;
      break;
    }
    case FaultKind::kHeal:
      st.heal_links();
      break;
    case FaultKind::kDropWindow:
      net.set_drop_probability(static_cast<double>(e.a) / 1000.0);
      c.simulator().after(static_cast<int64_t>(e.b),
                         [&net] { net.set_drop_probability(0.0); });
      break;
    case FaultKind::kDelay: {
      ReplicaId r = static_cast<ReplicaId>(e.a);
      if (r < 1 || r > c.num_replicas()) return;
      NodeId node = c.replica(r).node();
      net.set_extra_latency(node, static_cast<int64_t>(e.b));
      st.delayed_nodes.insert(node);
      c.simulator().after(static_cast<int64_t>(e.c), [&st, node] {
        if (st.delayed_nodes.erase(node) > 0) {
          st.cluster->network().set_extra_latency(node, 0);
        }
      });
      break;
    }
    case FaultKind::kReorder:
      net.set_reorder(static_cast<double>(e.a) / 1000.0,
                      static_cast<int64_t>(e.b));
      c.simulator().after(static_cast<int64_t>(e.c),
                         [&net] { net.set_reorder(0.0, 0); });
      break;
    case FaultKind::kCensorLink: {
      ReplicaId r = static_cast<ReplicaId>(e.a);
      if (r < 1 || r > c.num_replicas()) return;
      if (e.b >= c.num_clients()) return;
      NodeId client = c.n() + static_cast<NodeId>(e.b);
      NodeId replica = c.replica(r).node();
      net.block_link(client, replica);
      c.simulator().after(static_cast<int64_t>(e.c), [&net, client, replica] {
        net.unblock_link(client, replica);
      });
      break;
    }
    case FaultKind::kReconfig: {
      // The ReconfigBlockMsg goes to the current members' live primary; a
      // degraded cluster could silently lose it and the joiners would wait
      // forever, so only reconfigure a healthy one (the generator places the
      // event before any chaos — this guard matters for minimized/hand-built
      // schedules).
      if (st.reconfigured || st.replicas_down() > 0 || st.partition_active) {
        return;
      }
      if (e.a == 0) {
        // Grow 4 -> 7 (f 1 -> 2).
        if (c.options().f != 1 || c.options().c != 0 || c.num_replicas() != 4) {
          return;
        }
        std::vector<ReplicaId> adds;
        for (int i = 0; i < 3; ++i) adds.push_back(c.add_replica());
        c.submit_reconfig(adds, {}, /*new_f=*/2);
      } else {
        // Shrink 7 -> 4 (f 2 -> 1).
        if (c.options().f != 2 || c.options().c != 0 || c.num_replicas() != 7) {
          return;
        }
        c.submit_reconfig({}, {5, 6, 7}, /*new_f=*/1);
      }
      st.reconfigured = true;
      break;
    }
  }
}

}  // namespace

std::string FuzzResult::summary() const {
  std::ostringstream out;
  out << (ok() ? "OK" : "FAIL") << " executed=" << max_executed
      << " view_changes=" << view_changes << " recoveries=" << recoveries
      << " completed=" << (completed ? "yes" : "no") << " sim_end="
      << sim_end_us / 1000 << "ms";
  for (const std::string& v : violations) out << "\n  " << v;
  return out.str();
}

FuzzResult run_schedule(const Schedule& schedule) {
  const ScheduleTopology& t = schedule.topology;
  harness::ClusterOptions opts;
  opts.kind = t.kind;
  opts.f = t.f;
  opts.c = t.c;
  opts.num_clients = t.clients;
  opts.requests_per_client = t.requests_per_client;
  opts.cores_per_replica = t.cores;
  opts.seed = t.cluster_seed;
  opts.byzantine_replicas = t.byzantine;
  opts.byzantine_behavior = t.byz_behavior;
  opts.tracing = true;
  opts.trace_capacity = 1 << 18;
  if (t.service == 1) {
    opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  }
  // Short runs must still cross checkpoint boundaries (wiped replicas can
  // only rejoin via a stable checkpoint), so shrink the ordering window.
  opts.tweak_config = [](ProtocolConfig& config) { config.win = 32; };

  harness::Cluster cluster(opts);
  auto st = std::make_shared<RunState>();
  st->cluster = &cluster;
  st->genesis_f = t.f;
  st->genesis_n = cluster.n();

  for (const FaultEvent& e : schedule.events) {
    cluster.simulator().schedule(std::max<int64_t>(e.at_us, 0),
                                 [st, e] { apply_event(*st, e); });
  }
  // Heal-everything horizon: after this point no fault remains, so the
  // liveness bound and the convergence audit are legitimate.
  cluster.simulator().schedule(schedule.fault_horizon_us, [st] {
    st->heal_links();
    st->cluster->network().set_drop_probability(0.0);
    st->cluster->network().set_reorder(0.0, 0);
    for (ReplicaId r = 1; r <= st->cluster->num_replicas(); ++r) {
      if (st->cluster->network().crashed(st->cluster->replica(r).node())) {
        st->cluster->restart_replica(r, /*wipe_storage=*/false);
      }
    }
  });

  FuzzResult result;
  result.completed = cluster.run_until_done(schedule.liveness_deadline_us);
  cluster.run_for(schedule.settle_us);

  result.max_executed = cluster.max_executed();
  result.view_changes = cluster.total_view_changes();
  result.recoveries = cluster.total_recoveries();
  result.sim_end_us = cluster.simulator().now();

  if (!result.completed) {
    uint64_t unfinished = 0;
    for (size_t i = 0; i < cluster.num_clients(); ++i) {
      if (!cluster.client(i).done()) ++unfinished;
    }
    result.violations.push_back(
        "liveness: " + std::to_string(unfinished) + "/" +
        std::to_string(cluster.num_clients()) +
        " clients unfinished at deadline " +
        std::to_string(schedule.liveness_deadline_us) + "us");
  }
  SeqNum bad_seq = 0;
  if (!cluster.check_agreement(&bad_seq)) {
    result.violations.push_back(
        "agreement: replicas committed different blocks at seq " +
        std::to_string(bad_seq));
  }
  obs::CheckReport trace = cluster.check_trace();
  for (const std::string& v : trace.violations) {
    result.violations.push_back("trace: " + v);
  }
  // The cluster audits already prefix their messages ("convergence:",
  // "reply-cache:").
  for (std::string& v : cluster.audit_state_convergence()) {
    result.violations.push_back(std::move(v));
  }
  for (std::string& v : cluster.audit_reply_caches()) {
    result.violations.push_back(std::move(v));
  }
  return result;
}

}  // namespace sbft::fuzz
