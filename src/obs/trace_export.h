// Chrome-trace-event JSON exporter (ISSUE 6, pillar 3a).
//
// Serializes a set of per-replica Tracer streams into the Chrome Trace Event
// Format (the JSON flavor Perfetto and chrome://tracing load). Layout:
//   * pid  = replica id (one "process" per replica, named via metadata),
//   * tid  = event category (one named track per category),
//   * spans are async events ("b"/"e") with ids unique per (replica,
//     category, span), so overlapping slots render as parallel bars,
//   * instants are thread-scoped "i" events.
// Output is byte-deterministic for a deterministic event stream: iteration
// order is the caller's tracer order, and no wall-clock or locale state is
// consulted (tests/determinism_test.cpp pins this).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace sbft::obs {

/// Renders the streams as one Chrome trace JSON document.
std::string chrome_trace_json(const std::vector<const Tracer*>& tracers);

/// Writes chrome_trace_json() to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<const Tracer*>& tracers);

}  // namespace sbft::obs
