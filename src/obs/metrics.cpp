#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>

namespace sbft::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

void append_quoted(std::string& out, std::string_view s) {
  out += '"';
  out += s;  // metric names are identifier-like; no escaping needed
  out += '"';
}

}  // namespace

size_t Histogram::bucket_index(uint64_t v) {
  if (v < (1u << kSubBits)) return static_cast<size_t>(v);
  uint32_t top = 63 - static_cast<uint32_t>(std::countl_zero(v));
  uint64_t sub = v >> (top - kSubBits);  // in [2^kSubBits, 2^(kSubBits+1))
  return ((static_cast<size_t>(top) - kSubBits + 1) << kSubBits) +
         static_cast<size_t>(sub - (1u << kSubBits));
}

int64_t Histogram::bucket_upper_bound(size_t idx) {
  if (idx < (1u << kSubBits)) return static_cast<int64_t>(idx);
  size_t q = idx >> kSubBits;
  uint64_t sub = (idx & ((1u << kSubBits) - 1)) + (1u << kSubBits);
  uint32_t shift = static_cast<uint32_t>(q) - 1;
  return static_cast<int64_t>(((sub + 1) << shift) - 1);
}

void Histogram::record(int64_t value) {
  uint64_t v = value > 0 ? static_cast<uint64_t>(value) : 0;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[bucket_index(v)];
  if (count_ == 0) {
    min_ = max_ = static_cast<int64_t>(v);
  } else {
    min_ = std::min(min_, static_cast<int64_t>(v));
    max_ = std::max(max_, static_cast<int64_t>(v));
  }
  ++count_;
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (size_t i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

int64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  double clamped = std::clamp(p, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::clamp(bucket_upper_bound(i), min_, max_);
    }
  }
  return max_;
}

uint64_t& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return it->second;
}

uint64_t MetricsRegistry::value(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), 0.0).first;
  }
  return it->second;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) counter(name) += v;
  for (const auto& [name, v] : other.gauges_) gauge(name) = v;
  for (const auto& [name, h] : other.histograms_) histogram(name).merge(h);
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{";
  bool first = true;
  auto comma = [&] {
    if (!first) out += ',';
    first = false;
  };
  for (const auto& [name, v] : counters_) {
    comma();
    append_quoted(out, name);
    out += ':';
    out += std::to_string(v);
  }
  for (const auto& [name, v] : gauges_) {
    comma();
    append_quoted(out, name);
    out += ':';
    append_double(out, v);
  }
  for (const auto& [name, h] : histograms_) {
    comma();
    append_quoted(out, name);
    out += ":{\"count\":" + std::to_string(h.count());
    out += ",\"mean\":";
    append_double(out, h.mean());
    out += ",\"p50\":" + std::to_string(h.percentile(0.50));
    out += ",\"p95\":" + std::to_string(h.percentile(0.95));
    out += ",\"p99\":" + std::to_string(h.percentile(0.99));
    out += ",\"p999\":" + std::to_string(h.percentile(0.999));
    out += ",\"max\":" + std::to_string(h.max());
    out += '}';
  }
  out += '}';
  return out;
}

}  // namespace sbft::obs
