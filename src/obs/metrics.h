// Metrics registry (ISSUE 6, pillar 2).
//
// Named counters, gauges, and HDR-style log-bucketed histograms. The harness
// gives every replica a MetricsRegistry (shared across restarts, like the
// ledger handle); engines record per-stage latencies into histograms, and
// collect_metrics folds every replica's counter snapshot plus registry into
// one RunMetrics registry that benches emit generically — adding a counter is
// a one-line change at the increment site, with no copy chain to thread.
//
// Recording is deterministic (plain memory writes, no clock or RNG), so the
// registry is always on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace sbft::obs {

/// Log-bucketed histogram of non-negative integer samples (microseconds in
/// practice). Each power-of-two range is split into 2^kSubBits sub-buckets,
/// bounding relative quantile error at 2^-kSubBits (12.5%) while using a
/// fixed ~4 KiB of memory regardless of range — the classic HDR layout.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 3;
  static constexpr size_t kNumBuckets = (64 - kSubBits + 1) << kSubBits;

  void record(int64_t value);
  void merge(const Histogram& other);

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  int64_t min() const { return count_ ? min_ : 0; }
  int64_t max() const { return count_ ? max_ : 0; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }
  /// Value at quantile p in [0,1]; upper bound of the containing bucket,
  /// clamped to the observed [min, max].
  int64_t percentile(double p) const;

 private:
  static size_t bucket_index(uint64_t v);
  static int64_t bucket_upper_bound(size_t idx);

  std::vector<uint64_t> buckets_;  // sized lazily on first record()
  uint64_t count_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
  double sum_ = 0.0;
};

/// String-keyed counters (uint64), gauges (double), and histograms.
/// Iteration is in name order (std::map), so emission is deterministic.
class MetricsRegistry {
 public:
  uint64_t& counter(std::string_view name);
  void add(std::string_view name, uint64_t delta) { counter(name) += delta; }
  /// Counter value; 0 if the counter was never touched.
  uint64_t value(std::string_view name) const;

  double& gauge(std::string_view name);
  double gauge_value(std::string_view name) const;

  Histogram& histogram(std::string_view name);
  const Histogram* find_histogram(std::string_view name) const;

  /// Folds `other` into this registry: counters add, gauges overwrite,
  /// histograms merge.
  void merge(const MetricsRegistry& other);

  template <typename Fn>
  void for_each_counter(Fn&& fn) const {
    for (const auto& [name, v] : counters_) fn(name, v);
  }
  template <typename Fn>
  void for_each_gauge(Fn&& fn) const {
    for (const auto& [name, v] : gauges_) fn(name, v);
  }
  template <typename Fn>
  void for_each_histogram(Fn&& fn) const {
    for (const auto& [name, h] : histograms_) fn(name, h);
  }

  /// Sorted-key JSON object: counters verbatim, gauges as numbers, histograms
  /// as {count,mean,p50,p95,p99,p999,max} summaries.
  std::string to_json() const;

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace sbft::obs
