#include "obs/trace_checker.h"

#include <map>
#include <set>

namespace sbft::obs {

std::string CheckReport::summary() const {
  std::string out = "TraceChecker: " + std::to_string(events_checked) +
                    " events, " + std::to_string(violations.size()) +
                    " violation(s)";
  for (const auto& v : violations) out += "\n  violation: " + v;
  for (const auto& n : notes) out += "\n  note: " + n;
  return out;
}

void TraceChecker::add_replica(uint32_t replica, std::vector<TraceEvent> events,
                               uint64_t dropped) {
  streams_.push_back(Stream{replica, std::move(events), dropped});
}

uint64_t TraceChecker::count(Category category, std::string_view name) const {
  uint64_t n = 0;
  for (const auto& s : streams_) {
    for (const auto& e : s.events) {
      if (e.category == category && name == e.name) ++n;
    }
  }
  return n;
}

CheckReport TraceChecker::run() const {
  CheckReport report;
  bool truncated = false;
  for (const auto& s : streams_) {
    report.events_checked += s.events.size();
    if (s.dropped > 0) {
      truncated = true;
      report.notes.push_back("replica " + std::to_string(s.replica) +
                             " dropped " + std::to_string(s.dropped) +
                             " events (ring buffer full)");
    }
  }

  // Invariants 1 + 2: executed digests agree per slot; no re-execution.
  // first_digest maps seq -> (digest prefix, replica that set it).
  std::map<uint64_t, std::pair<uint64_t, uint32_t>> first_digest;
  for (const auto& s : streams_) {
    uint64_t last_seq = 0;
    bool any = false;
    for (const auto& e : s.events) {
      if (e.category != Category::kSlot) continue;
      if (std::string_view(ev::kReplicaRestarted) == e.name) {
        any = false;  // new incarnation: the execution cursor may move back
        continue;
      }
      if (std::string_view(ev::kExecute) != e.name) continue;
      if (any && e.seq <= last_seq) {
        report.violations.push_back(
            "replica " + std::to_string(s.replica) + ": executed seq " +
            std::to_string(e.seq) + " after seq " + std::to_string(last_seq) +
            " (double or out-of-order execution)");
      }
      last_seq = e.seq;
      any = true;
      auto [it, inserted] =
          first_digest.try_emplace(e.seq, std::make_pair(e.arg, s.replica));
      if (!inserted && it->second.first != e.arg) {
        report.violations.push_back(
            "seq " + std::to_string(e.seq) + ": replica " +
            std::to_string(s.replica) + " executed digest prefix " +
            std::to_string(e.arg) + " but replica " +
            std::to_string(it->second.second) + " executed " +
            std::to_string(it->second.first) + " (agreement broken)");
      }
    }
  }

  // Invariant 5: view monotonicity per incarnation. A restart marker resets
  // the cursor (a rebooted replica legitimately starts from its recovered
  // view and works forward).
  for (const auto& s : streams_) {
    uint64_t last_view = 0;
    for (const auto& e : s.events) {
      if (e.category == Category::kSlot &&
          std::string_view(ev::kReplicaRestarted) == e.name) {
        last_view = 0;
        continue;
      }
      if (e.category != Category::kViewChange) continue;
      bool enters_view = std::string_view(ev::kNewViewSent) == e.name ||
                         std::string_view(ev::kViewEntered) == e.name ||
                         std::string_view(ev::kViewAdopted) == e.name;
      if (!enters_view) continue;
      if (e.view < last_view) {
        report.violations.push_back(
            "replica " + std::to_string(s.replica) + ": entered view " +
            std::to_string(e.view) + " after view " +
            std::to_string(last_view) + " (view moved backwards)");
      }
      last_view = e.view;
    }
  }

  // Invariant 6: checkpoint-root agreement — two replicas stabilizing a
  // checkpoint at the same sequence must agree on its state root. Only
  // events that carry the digest argument participate (older traces predate
  // the arg).
  {
    std::map<uint64_t, std::pair<uint64_t, uint32_t>> first_root;
    for (const auto& s : streams_) {
      for (const auto& e : s.events) {
        if (e.category != Category::kCheckpoint ||
            std::string_view(ev::kCheckpointStable) != e.name ||
            e.arg_name == nullptr ||
            std::string_view("digest") != e.arg_name) {
          continue;
        }
        auto [it, inserted] =
            first_root.try_emplace(e.seq, std::make_pair(e.arg, s.replica));
        if (!inserted && it->second.first != e.arg) {
          report.violations.push_back(
              "checkpoint seq " + std::to_string(e.seq) + ": replica " +
              std::to_string(s.replica) + " stabilized state-root prefix " +
              std::to_string(e.arg) + " but replica " +
              std::to_string(it->second.second) + " stabilized " +
              std::to_string(it->second.first) +
              " (checkpoint agreement broken)");
        }
      }
    }
  }

  if (truncated) {
    report.notes.push_back(
        "streams truncated: fast-quorum and session-termination checks "
        "skipped");
    return report;
  }

  // Invariant 3: every fast-committed seq is backed by a collector proof
  // formed from >= fast_quorum sign-shares. The collector is the only
  // replica that sees the share count, so the proof event may come from a
  // different stream than the commit.
  if (fast_quorum_ > 0) {
    std::set<uint64_t> justified;
    for (const auto& s : streams_) {
      for (const auto& e : s.events) {
        if (e.category == Category::kSlot &&
            std::string_view(ev::kFastProofFormed) == e.name &&
            e.arg >= fast_quorum_) {
          justified.insert(e.seq);
        }
      }
    }
    std::set<uint64_t> flagged;
    for (const auto& s : streams_) {
      for (const auto& e : s.events) {
        if (e.category == Category::kSlot &&
            std::string_view(ev::kCommitFast) == e.name &&
            !justified.contains(e.seq) && flagged.insert(e.seq).second) {
          report.violations.push_back(
              "seq " + std::to_string(e.seq) +
              ": fast-committed without a collector proof of >= " +
              std::to_string(fast_quorum_) + " sign-shares");
        }
      }
    }
  }

  // Invariant 4: state-transfer sessions terminate — every opened session
  // span is closed within its replica's stream.
  for (const auto& s : streams_) {
    std::set<uint64_t> open;
    for (const auto& e : s.events) {
      if (e.category != Category::kStateTransfer) continue;
      if (e.phase == EventPhase::kBegin) open.insert(e.span);
      if (e.phase == EventPhase::kEnd) open.erase(e.span);
    }
    for (uint64_t span : open) {
      report.violations.push_back(
          "replica " + std::to_string(s.replica) + ": state-transfer session " +
          std::to_string(span) + " never terminated");
    }
  }

  return report;
}

}  // namespace sbft::obs
