// Structured protocol tracing (ISSUE 6, pillar 1).
//
// A Tracer is a per-replica, sim-time-stamped event stream held in a bounded
// ring buffer. Ordering engines and the shared runtime emit *instant* events
// (a point in time: "commit.fast", "st.chunk.invalid") and *span* events
// (begin/end pairs: a slot's lifetime from pre-prepare to execution, a
// view-change session, a state-transfer session). Consumers are the Chrome
// trace exporter (trace_export.h) and the TraceChecker (trace_checker.h).
//
// Tracing is off by default and zero-cost when disabled: a disabled tracer
// has capacity 0 and every emit call is a single predictable branch. Emitting
// never touches the simulator, the network, timers, or any RNG, so enabling
// tracing cannot perturb a run (tests/determinism_test.cpp pins this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sbft::obs {

enum class EventPhase : uint8_t {
  kInstant,  // point event
  kBegin,    // opens a span (matched by kEnd with the same category+span id)
  kEnd,
};

enum class Category : uint8_t {
  kSlot,           // per-sequence-number ordering lifecycle
  kViewChange,     // view-change sessions
  kStateTransfer,  // state-transfer sessions (probe/manifest/chunk/adopt)
  kCheckpoint,     // checkpoint capture/stabilization/adoption
  kReconfig,       // membership epoch activation
};
inline constexpr size_t kNumCategories = 5;

const char* category_name(Category c);

/// First 8 bytes of a 32-byte digest as a big-endian integer — the compact
/// fingerprint "execute" events carry so the TraceChecker can compare
/// executed digests across replicas without hauling full hashes around.
inline uint64_t digest_prefix(const uint8_t* digest) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | digest[i];
  return v;
}

// Event-name vocabulary. Names are inline constexpr pointers so emit sites
// pay no string cost; the checker and tests compare by content
// (std::string_view), never by pointer identity. docs/observability.md is
// the authoritative taxonomy — keep it in sync.
namespace ev {
// Slot lifecycle (Category::kSlot).
inline constexpr const char* kSlot = "slot";  // span: accept pre-prepare -> executed
inline constexpr const char* kRequestAdmitted = "request.admitted";
inline constexpr const char* kReplyCached = "reply.cached";
inline constexpr const char* kFastProofFormed = "fastproof.formed";  // arg = shares
inline constexpr const char* kPrepareFormed = "prepare.formed";      // arg = shares
inline constexpr const char* kSlowProofFormed = "slowproof.formed";  // arg = shares
inline constexpr const char* kCommitFast = "commit.fast";    // arg = digest prefix
inline constexpr const char* kCommitSlow = "commit.slow";    // arg = digest prefix
inline constexpr const char* kExecute = "execute";           // arg = exec digest prefix
inline constexpr const char* kExecAcks = "exec.acks";        // arg = pi shares
// Lifecycle markers the harness emits (Category::kSlot, seq 0). A restart
// resets the checker's per-replica execution cursor: a wiped replica
// legitimately re-executes sequences its previous incarnation already ran
// (digest agreement still applies across incarnations).
inline constexpr const char* kReplicaCrashed = "replica.crashed";
inline constexpr const char* kReplicaRestarted = "replica.restarted";
// View change (Category::kViewChange).
inline constexpr const char* kViewChange = "viewchange";  // span: start -> enter
inline constexpr const char* kNewViewSent = "newview.sent";
inline constexpr const char* kViewEntered = "view.entered";  // enter w/o local start
inline constexpr const char* kViewAdopted = "view.adopted";  // SBFT dual-mode adopt
// State transfer (Category::kStateTransfer).
inline constexpr const char* kStateTransfer = "statetransfer";  // span: session
inline constexpr const char* kStProbe = "st.probe";
inline constexpr const char* kStManifest = "st.manifest";        // arg = donor
inline constexpr const char* kStChunkStored = "st.chunk.stored";  // arg = chunk index
inline constexpr const char* kStChunkInvalid = "st.chunk.invalid";  // arg = donor
inline constexpr const char* kStResume = "st.resume";
inline constexpr const char* kStCertRejected = "st.cert.rejected";
inline constexpr const char* kStAdopt = "st.adopt";  // arg = digest prefix
inline constexpr const char* kStAdoptFailed = "st.adopt.failed";
// Checkpoints (Category::kCheckpoint).
inline constexpr const char* kCheckpointCaptured = "checkpoint.captured";
inline constexpr const char* kCheckpointStable = "checkpoint.stable";
inline constexpr const char* kCheckpointAdopted = "checkpoint.adopted";
// Reconfiguration (Category::kReconfig).
inline constexpr const char* kEpochActivated = "epoch.activated";  // arg = epoch
inline constexpr const char* kEpochJoined = "epoch.joined";        // arg = epoch
inline constexpr const char* kEpochRetired = "epoch.retired";      // arg = epoch
}  // namespace ev

struct TraceEvent {
  int64_t ts_us = 0;           // sim::SimTime of the emitting handler
  const char* name = nullptr;  // one of obs::ev::*
  Category category = Category::kSlot;
  EventPhase phase = EventPhase::kInstant;
  uint64_t span = 0;  // span id, unique within (replica, category)
  uint64_t seq = 0;   // protocol sequence number, 0 when n/a
  uint64_t view = 0;  // protocol view, 0 when n/a
  const char* arg_name = nullptr;  // optional extra argument
  uint64_t arg = 0;
};

class Tracer {
 public:
  /// Disabled tracer: capacity 0, every emit is a no-op.
  Tracer() = default;
  /// Enabled tracer for `replica`, keeping the most recent `capacity` events.
  Tracer(uint32_t replica, size_t capacity) : replica_(replica) {
    ring_.reserve(capacity);
    capacity_ = capacity;
  }

  bool enabled() const { return capacity_ != 0; }
  uint32_t replica() const { return replica_; }
  /// Events evicted from the ring (buffer was full). The checker relaxes
  /// span-matching invariants when a stream is known to be truncated.
  uint64_t dropped() const { return dropped_; }
  size_t size() const { return ring_.size(); }

  void instant(int64_t ts_us, Category cat, const char* name, uint64_t span = 0,
               uint64_t seq = 0, uint64_t view = 0,
               const char* arg_name = nullptr, uint64_t arg = 0) {
    emit(ts_us, cat, EventPhase::kInstant, name, span, seq, view, arg_name, arg);
  }
  void begin(int64_t ts_us, Category cat, const char* name, uint64_t span,
             uint64_t seq = 0, uint64_t view = 0,
             const char* arg_name = nullptr, uint64_t arg = 0) {
    emit(ts_us, cat, EventPhase::kBegin, name, span, seq, view, arg_name, arg);
  }
  void end(int64_t ts_us, Category cat, const char* name, uint64_t span,
           uint64_t seq = 0, uint64_t view = 0,
           const char* arg_name = nullptr, uint64_t arg = 0) {
    emit(ts_us, cat, EventPhase::kEnd, name, span, seq, view, arg_name, arg);
  }

  /// Events in emission order (oldest retained first).
  std::vector<TraceEvent> events() const;

  /// Shared always-disabled instance: engines bind a Tracer& to this when no
  /// tracer was supplied, so emit sites never null-check.
  static Tracer& nop();

 private:
  void emit(int64_t ts_us, Category cat, EventPhase phase, const char* name,
            uint64_t span, uint64_t seq, uint64_t view, const char* arg_name,
            uint64_t arg) {
    if (capacity_ == 0) return;  // disabled: the whole cost of tracing-off
    TraceEvent e{ts_us, name, cat, phase, span, seq, view, arg_name, arg};
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[head_] = e;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }

  uint32_t replica_ = 0;
  size_t capacity_ = 0;
  size_t head_ = 0;  // oldest element once the ring has wrapped
  uint64_t dropped_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace sbft::obs
