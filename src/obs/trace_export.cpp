#include "obs/trace_export.h"

#include <cstdio>

namespace sbft::obs {
namespace {

void append_event_common(std::string& out, uint32_t replica,
                         const TraceEvent& e) {
  out += "\"name\":\"";
  out += e.name;
  out += "\",\"cat\":\"";
  out += category_name(e.category);
  out += "\",\"pid\":" + std::to_string(replica);
  out += ",\"tid\":" + std::to_string(static_cast<unsigned>(e.category) + 1);
  out += ",\"ts\":" + std::to_string(e.ts_us);
}

void append_args(std::string& out, const TraceEvent& e) {
  out += ",\"args\":{";
  out += "\"seq\":" + std::to_string(e.seq);
  out += ",\"view\":" + std::to_string(e.view);
  if (e.arg_name != nullptr) {
    out += ",\"";
    out += e.arg_name;
    out += "\":" + std::to_string(e.arg);
  }
  out += '}';
}

void append_metadata(std::string& out, uint32_t replica, bool& first) {
  auto meta = [&](const char* name, uint64_t tid, const std::string& value) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += name;
    out += "\",\"ph\":\"M\",\"pid\":" + std::to_string(replica);
    out += ",\"tid\":" + std::to_string(tid);
    out += ",\"args\":{\"name\":\"" + value + "\"}}";
  };
  meta("process_name", 0, "replica " + std::to_string(replica));
  for (size_t c = 0; c < kNumCategories; ++c) {
    meta("thread_name", c + 1, category_name(static_cast<Category>(c)));
  }
}

}  // namespace

std::string chrome_trace_json(const std::vector<const Tracer*>& tracers) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    append_metadata(out, t->replica(), first);
  }
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    for (const TraceEvent& e : t->events()) {
      if (!first) out += ",\n";
      first = false;
      out += '{';
      append_event_common(out, t->replica(), e);
      switch (e.phase) {
        case EventPhase::kInstant:
          out += ",\"ph\":\"i\",\"s\":\"t\"";
          break;
        case EventPhase::kBegin:
        case EventPhase::kEnd:
          out += e.phase == EventPhase::kBegin ? ",\"ph\":\"b\"" : ",\"ph\":\"e\"";
          out += ",\"id\":\"r" + std::to_string(t->replica()) + ":";
          out += category_name(e.category);
          out += ":" + std::to_string(e.span) + "\"";
          break;
      }
      append_args(out, e);
      out += '}';
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<const Tracer*>& tracers) {
  std::string json = chrome_trace_json(tracers);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int rc = std::fclose(f);
  return written == json.size() && rc == 0;
}

}  // namespace sbft::obs
