// Trace-driven invariant checking (ISSUE 6, pillar 3b).
//
// Replays the per-replica event streams of a finished run and asserts
// cross-replica safety invariants directly from the trace — the queryable
// replacement for hand-written per-scenario assertion code, and the oracle
// the ROADMAP's schedule fuzzer will reuse:
//   1. Agreement: all replicas that executed sequence number s report the
//      same execution digest prefix.
//   2. No double execution: within one replica stream, executed sequence
//      numbers are strictly increasing (gaps are fine — state transfer jumps
//      a lagging replica forward — but re-execution is not).
//   3. Fast-path justification: every fast-committed slot has a collector
//      event showing a full fast quorum of sign-shares backing its proof.
//   4. State-transfer sessions terminate: every session span that was opened
//      is closed (adopt or stop) by the end of the run.
//   5. View monotonicity: within one incarnation of a replica, the views it
//      enters (newview.sent / view.entered / view.adopted) never decrease —
//      a replica sliding back to an older view could re-vote slots it
//      already voted under newer primaries.
//   6. Checkpoint-root agreement: every two replicas that stabilized a
//      checkpoint at the same sequence recorded the same state-root prefix.
// Invariants 3 and 4 need complete streams, so they are skipped (with a
// note) when any tracer reports dropped events.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"

namespace sbft::obs {

struct CheckReport {
  std::vector<std::string> violations;
  std::vector<std::string> notes;  // non-fatal, e.g. skipped checks
  uint64_t events_checked = 0;

  bool ok() const { return violations.empty(); }
  std::string summary() const;
};

class TraceChecker {
 public:
  /// `fast_quorum` is the number of sign-shares a fast-commit proof needs
  /// (3f+c+1 for SBFT); pass 0 to skip invariant 3 (e.g. PBFT, no fast path).
  explicit TraceChecker(uint32_t fast_quorum = 0) : fast_quorum_(fast_quorum) {}

  void add_replica(uint32_t replica, std::vector<TraceEvent> events,
                   uint64_t dropped = 0);

  CheckReport run() const;

  /// Occurrences of (category, name) across all added streams — lets tests
  /// assert that a fault left its detection events in the trace.
  uint64_t count(Category category, std::string_view name) const;

 private:
  struct Stream {
    uint32_t replica;
    std::vector<TraceEvent> events;
    uint64_t dropped;
  };

  uint32_t fast_quorum_;
  std::vector<Stream> streams_;
};

}  // namespace sbft::obs
