#include "obs/trace.h"

namespace sbft::obs {

const char* category_name(Category c) {
  switch (c) {
    case Category::kSlot: return "slot";
    case Category::kViewChange: return "viewchange";
    case Category::kStateTransfer: return "statetransfer";
    case Category::kCheckpoint: return "checkpoint";
    case Category::kReconfig: return "reconfig";
  }
  return "unknown";
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

Tracer& Tracer::nop() {
  // A disabled tracer never mutates state, so sharing one instance between
  // replicas is safe (the simulation is single-threaded regardless).
  static Tracer instance;
  return instance;
}

}  // namespace sbft::obs
