#include "core/view_change.h"

#include <algorithm>
#include <map>
#include <set>

#include "crypto/sha256.h"

namespace sbft::core {

namespace {

/// Digest commit-round hash for a full slow proof: the tau(tau(h)) round
/// signs commit_hash(SHA256(tau(h) bytes)).
Digest slow_round_digest(const Bytes& tau_sig) {
  return commit_hash(crypto::sha256(as_span(tau_sig)));
}

/// Threshold-signer index of `sender`: its epoch rank + 1 when the verifiers
/// carry an epoch (per-epoch schemes index members by rank), its id under the
/// genesis identity mapping. 0 = not a member (evidence invalid).
uint32_t signer_index(const ViewChangeVerifiers& verifiers, ReplicaId sender) {
  if (!verifiers.epoch) return sender;
  int rank = verifiers.epoch->rank_of(sender);
  return rank < 0 ? 0 : static_cast<uint32_t>(rank) + 1;
}

bool validate_slot_evidence(const ViewChangeVerifiers& verifiers, ReplicaId sender,
                            const SlotEvidence& e) {
  switch (e.lm_kind) {
    case SlowEvidence::kNone:
      break;
    case SlowEvidence::kPrepareCert: {
      Digest h = slot_hash(e.seq, e.lm_view, e.lm_block_digest);
      if (!verifiers.tau->verify(h, as_span(e.lm_sig))) return false;
      break;
    }
    case SlowEvidence::kFullProof: {
      Digest h = slot_hash(e.seq, e.lm_view, e.lm_block_digest);
      if (!verifiers.tau->verify(h, as_span(e.lm_inner_sig))) return false;
      if (!verifiers.tau->verify(slow_round_digest(e.lm_inner_sig), as_span(e.lm_sig)))
        return false;
      break;
    }
    default:
      return false;
  }
  switch (e.fm_kind) {
    case FastEvidence::kNone:
      break;
    case FastEvidence::kVote: {
      uint32_t signer = signer_index(verifiers, sender);
      if (signer == 0) return false;
      Digest h = slot_hash(e.seq, e.fm_view, e.fm_block_digest);
      if (!verifiers.sigma->verify_share(signer, h, as_span(e.fm_sig))) return false;
      break;
    }
    case FastEvidence::kFullProof: {
      Digest h = slot_hash(e.seq, e.fm_view, e.fm_block_digest);
      if (!verifiers.sigma->verify(h, as_span(e.fm_sig))) return false;
      break;
    }
    default:
      return false;
  }
  return true;
}

bool validate_checkpoint(const ViewChangeVerifiers& verifiers, SeqNum ls,
                         const ExecCertificate& cert) {
  if (ls == 0) return true;  // genesis needs no proof
  if (cert.seq != ls) return false;
  if (verifiers.verify_checkpoint) return verifiers.verify_checkpoint(cert);
  return verifiers.pi->verify(cert.exec_digest(), as_span(cert.pi_sig));
}

}  // namespace

bool validate_view_change(const ProtocolConfig& config,
                          const ViewChangeVerifiers& verifiers,
                          const ViewChangeMsg& msg) {
  if (verifiers.epoch ? !verifiers.epoch->contains(msg.sender)
                      : (msg.sender == 0 || msg.sender > config.n())) {
    return false;
  }
  if (!validate_checkpoint(verifiers, msg.ls, msg.checkpoint)) return false;
  std::set<SeqNum> seen;
  for (const SlotEvidence& e : msg.slots) {
    if (!seen.insert(e.seq).second) return false;  // one evidence per slot
    if (e.seq <= msg.ls || e.seq > msg.ls + config.win) return false;
    if (!validate_slot_evidence(verifiers, msg.sender, e)) return false;
  }
  return true;
}

bool validate_new_view(const ProtocolConfig& config,
                       const ViewChangeVerifiers& verifiers, const NewViewMsg& msg) {
  if (msg.proofs.size() < config.view_change_quorum()) return false;
  std::set<ReplicaId> senders;
  for (const ViewChangeMsg& vc : msg.proofs) {
    if (vc.next_view != msg.view) return false;
    if (!senders.insert(vc.sender).second) return false;
    if (!validate_view_change(config, verifiers, vc)) return false;
  }
  return true;
}

SeqNum select_stable_seq(const ProtocolConfig& /*config*/,
                         const ViewChangeVerifiers& verifiers,
                         const std::vector<ViewChangeMsg>& proofs) {
  SeqNum best = 0;
  for (const ViewChangeMsg& vc : proofs) {
    if (vc.ls > best && validate_checkpoint(verifiers, vc.ls, vc.checkpoint))
      best = vc.ls;
  }
  return best;
}

Block null_block() { return Block{}; }

SafeValue compute_safe_value(const ProtocolConfig& config,
                             const ViewChangeVerifiers& verifiers, SeqNum j,
                             const std::vector<ViewChangeMsg>& proofs) {
  SafeValue out;

  // Collect the evidence for slot j, one entry per sender, plus any attached
  // blocks (indexed by their true digest).
  struct Entry {
    ReplicaId sender;
    const SlotEvidence* e;
  };
  std::vector<Entry> entries;
  std::map<Digest, Block, std::less<>> blocks_by_digest;
  for (const ViewChangeMsg& vc : proofs) {
    for (const SlotEvidence& e : vc.slots) {
      if (e.seq != j) continue;
      entries.push_back({vc.sender, &e});
      if (e.block) {
        Digest d = e.block->digest();
        blocks_by_digest.emplace(d, *e.block);
      }
      break;
    }
  }
  auto attach_block = [&](const Digest& d) -> std::optional<Block> {
    auto it = blocks_by_digest.find(d);
    if (it == blocks_by_digest.end()) return std::nullopt;
    return it->second;
  };

  // (0) A full proof in either mode decides the slot outright.
  for (const Entry& entry : entries) {
    const SlotEvidence& e = *entry.e;
    if (e.lm_kind == SlowEvidence::kFullProof &&
        validate_slot_evidence(verifiers, entry.sender, e)) {
      out.kind = SafeValue::Kind::kDecided;
      out.block_digest = e.lm_block_digest;
      out.block = attach_block(e.lm_block_digest);
      out.decided_proof = e.lm_sig;
      out.decided_inner = e.lm_inner_sig;
      out.decided_fast = false;
      out.evidence_view = e.lm_view;
      return out;
    }
    if (e.fm_kind == FastEvidence::kFullProof &&
        validate_slot_evidence(verifiers, entry.sender, e)) {
      out.kind = SafeValue::Kind::kDecided;
      out.block_digest = e.fm_block_digest;
      out.block = attach_block(e.fm_block_digest);
      out.decided_proof = e.fm_sig;
      out.decided_fast = true;
      out.evidence_view = e.fm_view;
      return out;
    }
  }

  // (1) v*: the highest view carrying a valid prepare certificate tau(h).
  int64_t v_star = -1;
  Digest req_star{};
  for (const Entry& entry : entries) {
    const SlotEvidence& e = *entry.e;
    if (e.lm_kind != SlowEvidence::kPrepareCert) continue;
    if (!validate_slot_evidence(verifiers, entry.sender, e)) continue;
    if (static_cast<int64_t>(e.lm_view) > v_star) {
      v_star = static_cast<int64_t>(e.lm_view);
      req_star = e.lm_block_digest;
    }
  }

  // (2) v-hat: the highest view v for which some value req' is "fast": at
  // least f+c+1 sign-share votes for req' with views >= v. For each candidate
  // value, that maximum is the (f+c+1)-th highest vote view.
  const size_t fast_need = static_cast<size_t>(config.f + config.c + 1);
  std::map<Digest, std::vector<int64_t>, std::less<>> votes;  // digest -> views
  for (const Entry& entry : entries) {
    const SlotEvidence& e = *entry.e;
    if (e.fm_kind != FastEvidence::kVote) continue;
    if (!validate_slot_evidence(verifiers, entry.sender, e)) continue;
    votes[e.fm_block_digest].push_back(static_cast<int64_t>(e.fm_view));
  }
  int64_t v_hat = -1;
  Digest req_hat{};
  bool v_hat_tie = false;
  for (auto& [digest, views] : votes) {
    if (views.size() < fast_need) continue;
    std::sort(views.begin(), views.end(), std::greater<>());
    int64_t candidate = views[fast_need - 1];
    if (candidate > v_hat) {
      v_hat = candidate;
      req_hat = digest;
      v_hat_tie = false;
    } else if (candidate == v_hat && !(digest == req_hat)) {
      v_hat_tie = true;
    }
  }
  if (v_hat_tie) v_hat = -1;  // §V-G: ambiguous fast value invalidates v-hat

  // (3) Choose, preferring the slow certificate on ties (v* >= v-hat) — the
  // rule that makes the dual-mode protocol safe (proof of Lemma VI.2).
  if (v_star >= v_hat && v_star > -1) {
    out.kind = SafeValue::Kind::kAdopt;
    out.block_digest = req_star;
    out.block = attach_block(req_star);
    out.evidence_view = static_cast<ViewNum>(v_star);
    return out;
  }
  if (v_hat > v_star) {
    out.kind = SafeValue::Kind::kAdopt;
    out.block_digest = req_hat;
    out.block = attach_block(req_hat);
    out.evidence_view = static_cast<ViewNum>(v_hat);
    return out;
  }
  out.kind = SafeValue::Kind::kNoop;
  out.block = null_block();
  out.block_digest = out.block->digest();
  return out;
}

}  // namespace sbft::core
