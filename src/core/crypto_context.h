// Cluster cryptographic material and collector selection (§V-B).
//
// Each cluster deals three threshold schemes: sigma (3f+c+1), tau (2f+c+1)
// and pi (f+1). C-collectors and E-collectors for a (sequence, view) pair are
// a pseudo-random group of c+1 non-primary replicas, with the primary
// appended as the always-last staggered collector for the Linear-PBFT
// fallback (§V-E).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "crypto/threshold.h"
#include "proto/config.h"
#include "proto/types.h"
#include "runtime/membership.h"

namespace sbft::core {

/// The dealt schemes for one cluster (trusted-dealer setup, as in the paper's
/// permissioned deployment).
struct ClusterKeys {
  crypto::ThresholdScheme sigma;  // threshold 3f+c+1
  crypto::ThresholdScheme tau;    // threshold 2f+c+1
  crypto::ThresholdScheme pi;     // threshold f+1

  /// Simulated-BLS keys (protocol benchmarks and most tests).
  static ClusterKeys generate(Rng& rng, const ProtocolConfig& config);
  /// Real Shoup threshold-RSA keys (crypto-heavy tests, small n).
  static ClusterKeys generate_rsa(Rng& rng, const ProtocolConfig& config,
                                  int modulus_bits = 512);
  /// Simulated-BLS keys for an arbitrary roster size and fault parameters —
  /// the per-epoch re-keying a reconfiguration triggers (signer index k
  /// belongs to the member of epoch rank k-1; docs/reconfiguration.md).
  static ClusterKeys generate_for(Rng& rng, uint32_t n, uint32_t f, uint32_t c);
};

/// Per-epoch threshold key material, provisioned out-of-band by the same
/// trusted dealer that issues the reconfiguration (a real deployment runs a
/// re-keying ceremony; the harness deals fresh simulated-BLS schemes). Shared
/// by every replica and client of a cluster; epochs are provisioned before
/// the reconfiguration that activates them is submitted.
class EpochKeyTable {
 public:
  void provision(uint64_t epoch, ClusterKeys keys) {
    epochs_[epoch] = std::move(keys);
  }
  const ClusterKeys* find(uint64_t epoch) const {
    auto it = epochs_.find(epoch);
    return it == epochs_.end() ? nullptr : &it->second;
  }
  /// Epochs in provisioning order (verification fallbacks walk these).
  const std::map<uint64_t, ClusterKeys>& epochs() const { return epochs_; }

 private:
  std::map<uint64_t, ClusterKeys> epochs_;
};

/// Per-replica view of the cluster keys.
struct ReplicaCrypto {
  std::shared_ptr<const crypto::IThresholdVerifier> sigma_verifier;
  std::shared_ptr<const crypto::IThresholdVerifier> tau_verifier;
  std::shared_ptr<const crypto::IThresholdVerifier> pi_verifier;
  std::shared_ptr<const crypto::IThresholdSigner> sigma_signer;  // null for clients
  std::shared_ptr<const crypto::IThresholdSigner> tau_signer;
  std::shared_ptr<const crypto::IThresholdSigner> pi_signer;

  static ReplicaCrypto for_replica(const ClusterKeys& keys, ReplicaId id);
  static ReplicaCrypto verifier_only(const ClusterKeys& keys);
};

/// Verifier bundle used by the pure view-change functions. When `epoch` is
/// set, sender membership and share-signer indices are resolved against it
/// (member rank + 1); null keeps the genesis identity mapping (ids 1..n).
/// `verify_checkpoint`, when set, replaces the plain pi verification of
/// view-change checkpoint certificates — a certificate sealed just before an
/// epoch boundary carries the *previous* epoch's pi signature, so the engine
/// supplies a seq-aware verifier (SbftReplica::verify_cert_pi).
struct ViewChangeVerifiers {
  const crypto::IThresholdVerifier* sigma = nullptr;
  const crypto::IThresholdVerifier* tau = nullptr;
  const crypto::IThresholdVerifier* pi = nullptr;
  const runtime::MembershipEpoch* epoch = nullptr;
  std::function<bool(const ExecCertificate&)> verify_checkpoint;
};

/// Commit collectors for (s, v): c+1 pseudo-random non-primary replicas,
/// ordered by stagger rank (entry 0 activates first).
std::vector<ReplicaId> c_collectors(const ProtocolConfig& config, SeqNum s, ViewNum v);

/// Execution collectors for (s, v): same construction, different draw.
std::vector<ReplicaId> e_collectors(const ProtocolConfig& config, SeqNum s, ViewNum v);

/// Collectors for the fallback (Linear-PBFT) commit-share stage: the c+1
/// C-collectors with the primary appended as the always-last staggered
/// collector (§V-E: "the c+1st collector to activate is always the primary").
std::vector<ReplicaId> commit_collectors(const ProtocolConfig& config, SeqNum s,
                                         ViewNum v);

/// E-collectors with the primary appended as the last fallback collector
/// (replicas re-send their pi shares to the primary when a slot's execution
/// certificate stalls).
std::vector<ReplicaId> fallback_e_collectors(const ProtocolConfig& config, SeqNum s,
                                             ViewNum v);

/// Epoch-roster variants: identical deterministic draws over the epoch's
/// member list (non-contiguous ids after a removal). For the genesis epoch
/// (members 1..n, node r-1) they reduce to exactly the config-based draws.
std::vector<ReplicaId> c_collectors(const runtime::MembershipEpoch& epoch, SeqNum s,
                                    ViewNum v);
std::vector<ReplicaId> e_collectors(const runtime::MembershipEpoch& epoch, SeqNum s,
                                    ViewNum v);
std::vector<ReplicaId> commit_collectors(const runtime::MembershipEpoch& epoch,
                                         SeqNum s, ViewNum v);
std::vector<ReplicaId> fallback_e_collectors(const runtime::MembershipEpoch& epoch,
                                             SeqNum s, ViewNum v);

/// Stagger rank of `replica` within `collectors` (0 = first), or -1.
int collector_rank(const std::vector<ReplicaId>& collectors, ReplicaId replica);

}  // namespace sbft::core
