// SBFT ordering engine (§V): fast path, Linear-PBFT fallback, execution
// acknowledgement with E-collectors, state transfer, and the dual-mode view
// change. Everything protocol-independent — the execution pipeline, reply
// cache, checkpointing, WAL/recovery — lives in runtime::ReplicaRuntime; this
// class decides *which* block commits at each sequence number.
//
// The replica is a simulator actor: all sends/timers go through the
// ActorContext, and every cryptographic or service operation charges its
// calibrated cost so the discrete-event clock reflects a real deployment.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "core/crypto_context.h"
#include "core/view_change.h"
#include "kv/service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/config.h"
#include "proto/message.h"
#include "recovery/wal.h"
#include "runtime/replica_runtime.h"
#include "sim/network.h"
#include "storage/ledger_storage.h"

namespace sbft::core {

/// Fault behaviours injected for testing. Everything except kHonest models a
/// Byzantine or crashed replica; honest replicas must stay safe regardless.
enum class ReplicaBehavior {
  kHonest,
  kSilent,         // receives but never sends (crash-like, still counts CPU)
  kEquivocate,     // as primary, proposes different blocks to different halves
  kCorruptShares,  // flips a byte in every threshold share it emits
  kCensor,         // as primary, silently drops requests from odd-id clients
                   // (liveness must recover via the backup progress timers
                   // forcing a view change past the censoring primary)
};

struct ReplicaOptions {
  ProtocolConfig config;
  ReplicaId id = 1;  // 1..n; the replica must be node id-1 in the network
  ReplicaCrypto crypto;
  std::shared_ptr<storage::ILedgerStorage> ledger;  // optional persistence
  // Optional write-ahead log for consensus metadata (view, checkpoints,
  // in-flight votes). When ledger and/or wal hold state at construction, the
  // replica rebuilds itself from them (crash recovery, §VIII).
  std::shared_ptr<recovery::IReplicaWal> wal;
  // Set when the replica is restarted into an already-running cluster: it
  // probes state transfer on boot in case its local log fell behind the
  // cluster's stable checkpoint (or the disk was lost entirely).
  bool recovering = false;
  ReplicaBehavior behavior = ReplicaBehavior::kHonest;
  // Fault injection: as a state-transfer donor, flip a byte in every chunk
  // payload served (the proof still matches the honest chunk, so fetchers
  // must detect the corruption by Merkle verification and move on).
  bool corrupt_state_chunks = false;
  // Collector staggering (§V: "in most executions just one collector is
  // active and the others just monitor in idle").
  int64_t collector_stagger_us = 25'000;
  // Group reconfiguration (docs/reconfiguration.md): the bootstrap roster the
  // replica starts from. Empty derives the genesis roster from the config
  // (ids 1..n at nodes 0..n-1). A joining replica is handed the current
  // epoch's roster — which does not contain it — and learns the epoch that
  // admits it from state transfer.
  std::vector<ReplicaInfo> roster;
  uint32_t roster_f = 0;  // fault parameters of the bootstrap roster (0: config)
  uint32_t roster_c = 0;
  // Per-epoch threshold key material (trusted-dealer re-keying); epoch 0
  // always uses `crypto`. Required before any epoch > 0 activates.
  std::shared_ptr<const EpochKeyTable> epoch_keys;
  // Observability (docs/observability.md). A null tracer binds to the shared
  // disabled instance; a null registry gets an engine-private one, so both
  // are optional for direct-construction unit tests.
  std::shared_ptr<obs::Tracer> tracer;
  std::shared_ptr<obs::MetricsRegistry> metrics;
  // Cross-shard marker executor (docs/sharding.md). Not owned — the harness
  // keeps it alive across replica incarnations, like the ledger. Null for
  // single-group deployments.
  runtime::IMarkerExecutor* marker_executor = nullptr;
};

/// SBFT protocol counters on top of the shared runtime counters (the base's
/// fields — execution, state transfer, recovery, reconfiguration — are
/// slice-assigned from the runtime in stats()).
struct ReplicaStats : runtime::RuntimeStats {
  uint64_t fast_commits = 0;
  uint64_t slow_commits = 0;
  uint64_t view_changes = 0;
  uint64_t invalid_shares_seen = 0;
  // Phase timing lives in the metrics registry's "stage.*" histograms
  // (pp_to_commit/commit_to_exec/pending_wait/exec_to_ack); the raw
  // per-replica sums that used to sit here were dead weight the counter lint
  // flagged — they were accumulated but never exported anywhere.
  uint64_t timed_slots = 0;        // slots with a pp->commit measurement
  uint64_t proposed_requests = 0;  // primary: requests batched into blocks
  uint64_t acked_blocks = 0;       // E-collector: blocks acked to clients
  uint64_t buffered_pi_shares = 0;
  // Primary: empty blocks proposed to drive an idle cluster across a pending
  // reconfiguration's activation checkpoint boundary.
  uint64_t noop_fill_blocks = 0;

  /// Invokes fn(name, value) for every counter, runtime fields included.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    runtime::RuntimeStats::for_each(fn);
    fn("fast_commits", fast_commits);
    fn("slow_commits", slow_commits);
    fn("view_changes", view_changes);
    fn("invalid_shares_seen", invalid_shares_seen);
    fn("timed_slots", timed_slots);
    fn("proposed_requests", proposed_requests);
    fn("acked_blocks", acked_blocks);
    fn("buffered_pi_shares", buffered_pi_shares);
    fn("noop_fill_blocks", noop_fill_blocks);
  }
};

class SbftReplica final : public sim::IActor {
 public:
  SbftReplica(ReplicaOptions options, std::unique_ptr<IService> service);
  ~SbftReplica() override;  // defined where Slot is complete

  void on_start(sim::ActorContext& ctx) override;
  void on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) override;
  void on_timer(uint64_t id, sim::ActorContext& ctx) override;

  // Introspection (tests, metrics).
  ReplicaId id() const { return opts_.id; }
  ViewNum view() const { return view_; }
  SeqNum last_executed() const { return runtime_.last_executed(); }
  SeqNum last_stable() const { return runtime_.last_stable(); }
  const IService& service() const { return runtime_.service(); }
  const runtime::ReplicaRuntime& runtime() const { return runtime_; }
  /// Protocol stats merged with the runtime's protocol-agnostic stats.
  ReplicaStats stats() const;
  /// Chained execution digest d_s for an executed sequence (nullopt if
  /// unknown / garbage collected without record).
  std::optional<Digest> exec_digest_of(SeqNum s) const {
    return runtime_.exec_digest_of(s);
  }
  /// Digest of the decision block committed at s (nullopt if not committed).
  std::optional<Digest> committed_digest_of(SeqNum s) const;

 private:
  struct Slot;

  // --- message handlers -----------------------------------------------------
  void handle_client_request(NodeId from, const ClientRequestMsg& m,
                             sim::ActorContext& ctx);
  void handle_pre_prepare(NodeId from, const PrePrepareMsg& m, sim::ActorContext& ctx);
  void handle_sign_share(const SignShareMsg& m, sim::ActorContext& ctx);
  void handle_full_commit_proof(const FullCommitProofMsg& m, sim::ActorContext& ctx);
  void handle_prepare(const PrepareMsg& m, sim::ActorContext& ctx);
  void handle_commit_share(const CommitShareMsg& m, sim::ActorContext& ctx);
  void handle_full_commit_proof_slow(const FullCommitProofSlowMsg& m,
                                     sim::ActorContext& ctx);
  void handle_sign_state(const SignStateMsg& m, sim::ActorContext& ctx);
  void handle_full_execute_proof(const FullExecuteProofMsg& m, sim::ActorContext& ctx);
  void handle_view_change(const ViewChangeMsg& m, sim::ActorContext& ctx);
  void handle_new_view(const NewViewMsg& m, sim::ActorContext& ctx);
  void handle_get_block_request(const GetBlockRequestMsg& m, sim::ActorContext& ctx);
  void handle_get_block_reply(const GetBlockReplyMsg& m, sim::ActorContext& ctx);
  void handle_state_transfer_request(NodeId from, const StateTransferRequestMsg& m,
                                     sim::ActorContext& ctx);
  void handle_state_transfer_reply(const StateTransferReplyMsg& m,
                                   sim::ActorContext& ctx);
  void handle_state_manifest(NodeId from, const StateManifestMsg& m,
                             sim::ActorContext& ctx);
  void handle_state_chunk_request(NodeId from, const StateChunkRequestMsg& m,
                                  sim::ActorContext& ctx);
  void handle_state_chunk(NodeId from, const StateChunkMsg& m,
                          sim::ActorContext& ctx);
  void handle_reconfig_block(const ReconfigBlockMsg& m, sim::ActorContext& ctx);

  // --- membership epochs (docs/reconfiguration.md) ----------------------------
  const runtime::MembershipEpoch& epoch() const {
    return runtime_.membership().active();
  }
  const runtime::MembershipEpoch& epoch_for_seq(SeqNum s) const {
    return runtime_.membership().epoch_for_seq(s);
  }
  /// Threshold key material of an epoch: epoch 0 is the dealt cluster keys;
  /// later epochs resolve from the provisioned EpochKeyTable (memoized).
  const ReplicaCrypto& crypto_for_epoch(const runtime::MembershipEpoch& e) const;
  const ReplicaCrypto& crypto_for_seq(SeqNum s) const {
    return crypto_for_epoch(epoch_for_seq(s));
  }
  /// Signer index of `r` in slot s's epoch schemes (rank + 1); 0 = non-member.
  uint32_t signer_of(ReplicaId r, SeqNum s) const {
    int rank = epoch_for_seq(s).rank_of(r);
    return rank < 0 ? 0 : static_cast<uint32_t>(rank) + 1;
  }
  /// Checkpoint certificates outlive their epoch (and a joiner may fetch one
  /// certified under an epoch it has not installed yet): verify against the
  /// seq's epoch first, then every provisioned epoch.
  bool verify_cert_pi(const ExecCertificate& cert) const;
  /// First sequence proposals/pre-prepares must not cross while a
  /// reconfiguration awaits activation (0: no gate). Pre-boundary keys must
  /// never sign post-boundary slots.
  SeqNum reconfig_gate() const;
  /// Active epoch's verifier bundle for the pure view-change functions.
  ViewChangeVerifiers view_change_verifiers() const;
  /// Folds a pending epoch change into the engine: derived config, primary
  /// timers, retirement. Call after any runtime operation that can activate.
  void maybe_refresh_epoch(sim::ActorContext& ctx);

  // --- primary --------------------------------------------------------------
  bool is_primary() const { return epoch().primary_of(view_) == opts_.id; }
  uint64_t active_window() const;
  uint32_t adaptive_batch_size() const;
  void try_propose(sim::ActorContext& ctx, bool flush_partial = false);
  /// Continuation of handle_client_request once the request signature has
  /// been verified (possibly on a worker lane).
  /// Drains the marker executor after every message/timer: relays its queued
  /// sends and (primary only) enqueues staged 2PC decision markers for
  /// ordering (docs/sharding.md). No-op without an executor.
  void pump_marker_executor(sim::ActorContext& ctx);
  void admit_client_request(NodeId from, const Request& req,
                            sim::ActorContext& ctx);
  void propose_block(Block block, sim::ActorContext& ctx);

  // --- commit paths ----------------------------------------------------------
  void accept_pre_prepare(SeqNum s, ViewNum v, Block block, sim::ActorContext& ctx);
  void collector_try_fast(SeqNum s, sim::ActorContext& ctx, bool from_stagger);
  void collector_try_prepare(SeqNum s, sim::ActorContext& ctx);
  void collector_try_slow_proof(SeqNum s, sim::ActorContext& ctx);
  void commit(SeqNum s, const Digest& block_digest, bool fast, sim::ActorContext& ctx);

  // --- execution (§V-D) -------------------------------------------------------
  void try_execute(sim::ActorContext& ctx);
  void execute_block(SeqNum s, sim::ActorContext& ctx);
  void ecollector_try_proof(SeqNum s, sim::ActorContext& ctx, bool from_stagger);
  void send_execute_acks(SeqNum s, sim::ActorContext& ctx);
  void advance_checkpoint(SeqNum s, sim::ActorContext& ctx);

  // --- crash recovery (§VIII) -------------------------------------------------
  /// Rebuilds state from WAL + ledger at construction time (no-op when the
  /// attached storage is fresh or absent).
  void recover_from_storage();
  /// Fast-forwards to view `v` on the strength of a verified combined
  /// threshold signature produced in `v` (a quorum operated there). Lets a
  /// recovered or lagging replica rejoin across view changes it slept
  /// through. No-op while a view change is in progress.
  void adopt_verified_view(ViewNum v, sim::ActorContext& ctx);

  // --- view change (§V-G) -----------------------------------------------------
  void start_view_change(ViewNum target, sim::ActorContext& ctx);
  ViewChangeMsg build_view_change(ViewNum target) const;
  void maybe_send_new_view(ViewNum target, sim::ActorContext& ctx);
  void enter_new_view(const NewViewMsg& m, sim::ActorContext& ctx);

  // --- state transfer ----------------------------------------------------------
  void request_state_transfer(sim::ActorContext& ctx);
  /// True while this replica demonstrably needs a newer checkpoint (execution
  /// gap behind delivered traffic, or a wiped/restarted boot with nothing yet).
  bool state_transfer_behind() const;
  /// Sends the manager's next chunk-request plan to its chosen donors.
  void send_chunk_requests(sim::ActorContext& ctx);
  /// Broadcasts the state-transfer probe (delta base advertised; the cold
  /// chunk-hashing of the local snapshot is charged here).
  void broadcast_state_probe(sim::ActorContext& ctx);
  /// Arms the donor tick while the rate limiter has budget in use or deferred
  /// requests queued (re-served there instead of being dropped).
  void arm_donor_tick(sim::ActorContext& ctx);
  /// All chunks received: assemble, adopt, and clean up (or restart the fetch
  /// when the assembled envelope fails the certified state-root check).
  void complete_chunked_transfer(sim::ActorContext& ctx);

  // --- helpers -----------------------------------------------------------------
  SeqNum le() const { return runtime_.last_executed(); }
  SeqNum ls() const { return runtime_.last_stable(); }
  Slot& slot(SeqNum s);
  Slot* find_slot(SeqNum s);
  NodeId node_of(ReplicaId r) const;
  bool from_replica(NodeId node, ReplicaId r) const { return node == node_of(r); }
  void send_to_replica(sim::ActorContext& ctx, ReplicaId r, MessagePtr msg);
  void broadcast_replicas(sim::ActorContext& ctx, MessagePtr msg);
  Bytes sign_share_maybe_corrupt(const crypto::IThresholdSigner& signer,
                                 const Digest& d) const;
  void arm_progress_timer(sim::ActorContext& ctx);
  bool silent() const { return opts_.behavior == ReplicaBehavior::kSilent; }

  ReplicaOptions opts_;
  runtime::ReplicaRuntime runtime_;

  // Observability: the tracer reference binds to opts_.tracer or the shared
  // disabled instance; per-stage latency histograms live in the registry and
  // survive restarts with it (the harness shares one registry per handle).
  obs::Tracer& trace_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  obs::Histogram* h_pp_to_commit_;
  obs::Histogram* h_commit_to_exec_;
  obs::Histogram* h_pending_wait_;
  obs::Histogram* h_exec_to_ack_;
  // Open trace spans (0 / false = none): the view-change session under way,
  // and the current state-transfer session.
  ViewNum vc_span_ = 0;
  uint64_t st_session_ = 0;
  bool st_span_open_ = false;

  // Derived from the active epoch (f/c patched into the protocol config so
  // quorum formulas and the pure view-change functions see the epoch sizing).
  ProtocolConfig cfg_;
  // Memoized per-epoch ReplicaCrypto resolved from the EpochKeyTable.
  mutable std::map<uint64_t, ReplicaCrypto> epoch_crypto_;
  // Set when an activated epoch no longer contains this replica: it drains —
  // serves state transfer and cached replies, but never votes or proposes.
  bool retired_ = false;
  // Pre-execution shadow of the activation boundary: set when a pre-prepare
  // carrying a reconfiguration marker is accepted at seq s (boundary =
  // ceil(s / interval) * interval), authoritative once the marker executes
  // and the runtime stages the pending reconfiguration.
  SeqNum shadow_gate_ = 0;

  ViewNum view_ = 0;
  bool in_view_change_ = false;
  ViewNum vc_target_ = 0;
  uint32_t vc_attempts_ = 0;

  SeqNum next_seq_ = 1;  // primary: next sequence to propose

  std::map<SeqNum, Slot> slots_;

  // Primary request queue.
  std::deque<std::pair<Request, sim::SimTime>> pending_;
  std::set<std::pair<ClientId, uint64_t>> pending_keys_;
  double avg_pending_ = 0;  // EWMA demand estimate for adaptive batching

  // View-change messages collected per target view.
  std::map<ViewNum, std::map<ReplicaId, ViewChangeMsg>> vc_msgs_;
  bool new_view_sent_ = false;

  // Progress tracking for the view-change timer.
  SeqNum progress_marker_ = 0;
  bool progress_timer_armed_ = false;
  bool forwarded_waiting_ = false;  // forwarded a client request to the primary
  bool st_inflight_ = false;
  bool donor_tick_armed_ = false;

  // Votes persisted by a previous incarnation for slots still in flight:
  // seq -> (highest voted view, block digest). A recovered replica refuses to
  // vote for a conflicting digest at or below that view (anti-equivocation).
  std::map<SeqNum, std::pair<ViewNum, Digest>> wal_votes_;
  uint64_t recovered_replay_bytes_ = 0;  // charged as boot-time replay CPU

  ReplicaStats stats_;  // protocol-level counters; runtime fields merged in stats()
};

}  // namespace sbft::core
