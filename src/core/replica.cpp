#include "core/replica.h"

#include <algorithm>

#include "crypto/sha256.h"

namespace sbft::core {

namespace {

// Timer identifiers: kind in the top 16 bits, sequence/payload below.
enum TimerKind : uint64_t {
  kBatchTimer = 1,
  kFastPathTimer = 2,
  kStaggerFast = 3,
  kStaggerPrepare = 4,
  kStaggerSlow = 5,
  kStaggerExec = 6,
  kProgressTimer = 7,
  kStateTransferTimer = 8,
  kShareFallback = 9,   // re-send sign-share to the primary (stalled slot)
  kStateFallback = 10,  // re-send sign-state to the primary (stalled cert)
  kDonorTickTimer = 11, // drain chunk serves the donor rate limiter deferred
  kShardTickTimer = 12, // marker executor retry cadence (docs/sharding.md)
};

uint64_t timer_id(TimerKind kind, uint64_t payload) {
  return (static_cast<uint64_t>(kind) << 48) | (payload & 0xffffffffffffull);
}
TimerKind timer_kind(uint64_t id) { return static_cast<TimerKind>(id >> 48); }
uint64_t timer_payload(uint64_t id) { return id & 0xffffffffffffull; }

}  // namespace

// ---------------------------------------------------------------------------
// Per-slot state

struct SbftReplica::Slot {
  // Accepted pre-prepare (highest view).
  bool has_pp = false;
  ViewNum pp_view = 0;
  Digest block_digest{};
  std::optional<Block> block;
  Digest h{};
  Bytes own_sigma_share;  // kept for the view-change fm vote

  // The slow-path prepare certificate and the fast/slow full proofs live in
  // runtime_.evidence() (runtime/evidence_store.h) — the view-change
  // evidence layer shared with PBFT.
  bool sent_commit_share = false;

  bool committed = false;
  bool committed_fast = false;
  Digest committed_digest{};
  sim::SimTime pp_time = -1;
  sim::SimTime commit_time = -1;

  // Post-view-change adoption waiting for the block payload.
  bool awaiting_block = false;
  Digest awaiting_digest{};
  bool awaiting_is_commit = false;  // true: commit on arrival; false: adopt

  // --- C-collector state (valid for coll_view) ------------------------------
  struct Shares {
    Bytes sigma;
    Bytes tau;
  };
  ViewNum coll_view = 0;
  bool coll_active = false;
  // sign-shares grouped by h (an equivocating primary splits the quorum).
  std::map<Digest, std::map<ReplicaId, Shares>> coll_shares;
  std::map<Digest, Digest> coll_digest_of_h;  // h -> block digest
  bool coll_fast_timer_set = false;
  bool coll_sent_fast = false;
  bool coll_sent_prepare = false;
  bool coll_sent_slow = false;
  bool coll_stagger_fast_set = false;
  bool coll_stagger_prepare_set = false;
  bool coll_stagger_slow_set = false;
  Bytes coll_tau;            // tau(h) built or observed via Prepare
  Digest coll_h{};           // h the certificate refers to
  Digest coll_block_digest{};
  std::map<ReplicaId, Bytes> coll_commit_shares;  // shares over d2
  // Batch-verify + combine offloads in flight on a worker lane, keyed by the
  // h being combined. Guards against re-offloading the same quorum while its
  // verification runs; cleared by the completion callback.
  std::set<Digest> coll_fast_verifying;
  std::set<Digest> coll_prepare_verifying;
  bool coll_slow_verifying = false;

  // --- E-collector state -----------------------------------------------------
  std::map<ReplicaId, Bytes> pi_shares;  // shares matching our own exec digest
  std::vector<std::pair<ReplicaId, Bytes>> buffered_pi;  // arrived pre-execution
  bool e_sent = false;
  bool e_stagger_set = false;
  bool e_verifying = false;
};

// ---------------------------------------------------------------------------
// Construction / lifecycle

namespace {
/// Bootstrap roster handed to the runtime: the explicit one when given, else
/// the genesis mapping (ids 1..n at nodes 0..n-1).
runtime::RuntimeOptions make_runtime_options(const ReplicaOptions& opts) {
  runtime::RuntimeOptions ro;
  ro.checkpoint_interval = opts.config.checkpoint_interval();
  ro.ledger = opts.ledger;
  ro.wal = opts.wal;
  ro.state_transfer_chunk_size = opts.config.state_transfer_chunk_size;
  ro.state_transfer_max_chunks_per_request =
      opts.config.state_transfer_max_chunks_per_request;
  ro.state_transfer_delta_enabled = opts.config.state_transfer_delta_enabled;
  ro.state_transfer_donor_chunks_per_tick =
      opts.config.state_transfer_donor_chunks_per_tick;
  ro.state_transfer_delta_history = opts.config.state_transfer_delta_history;
  ro.self = opts.id;
  ro.tracer = opts.tracer;
  ro.marker_executor = opts.marker_executor;
  if (!opts.roster.empty()) {
    ro.membership_f = opts.roster_f > 0 ? opts.roster_f : opts.config.f;
    ro.membership_c = opts.roster_f > 0 ? opts.roster_c : opts.config.c;
    ro.bootstrap_members = opts.roster;
  } else {
    ro.membership_f = opts.config.f;
    ro.membership_c = opts.config.c;
    for (ReplicaId r = 1; r <= opts.config.n(); ++r) {
      ro.bootstrap_members.push_back({r, r - 1});
    }
  }
  return ro;
}
}  // namespace

SbftReplica::SbftReplica(ReplicaOptions options, std::unique_ptr<IService> service)
    : opts_(std::move(options)),
      runtime_(make_runtime_options(opts_), std::move(service)),
      trace_(opts_.tracer ? *opts_.tracer : obs::Tracer::nop()),
      metrics_(opts_.metrics ? opts_.metrics
                             : std::make_shared<obs::MetricsRegistry>()),
      h_pp_to_commit_(&metrics_->histogram("stage.pp_to_commit_us")),
      h_commit_to_exec_(&metrics_->histogram("stage.commit_to_exec_us")),
      h_pending_wait_(&metrics_->histogram("stage.pending_wait_us")),
      h_exec_to_ack_(&metrics_->histogram("stage.exec_to_ack_us")),
      cfg_(opts_.config) {
  opts_.config.validate();
  // With an explicit roster the id may exceed the genesis n (a joiner added
  // by a later epoch); the genesis mapping requires id in 1..n.
  SBFT_CHECK(opts_.id >= 1 &&
             (!opts_.roster.empty() || opts_.id <= opts_.config.n()));
  recover_from_storage();
  // Recovery may have reinstalled a later epoch; fold it into the derived
  // config and retirement state (no context: timers re-arm in on_start).
  // A non-member is a *joiner* only when nothing local says otherwise; a
  // restarted removed member — whose recovered WAL carries the epoch that
  // excluded it — re-retires instead of probing for an admission that will
  // never come. (A wiped removed member boots as a joiner and retires the
  // moment it adopts a checkpoint whose epoch excludes it.)
  cfg_ = epoch().derive_config(opts_.config);
  runtime_.take_epoch_change();
  retired_ = !runtime_.membership().is_member(opts_.id) &&
             (!opts_.recovering || runtime_.stats().recoveries > 0);
}

NodeId SbftReplica::node_of(ReplicaId r) const {
  // Resolve through the membership history (a state-transfer requester may be
  // a joiner known only from a staged delta; a donor may be a member of an
  // epoch this replica already left behind). Genesis fallback r-1 covers the
  // unconfigured unit-test paths.
  const runtime::MembershipManager& m = runtime_.membership();
  if (!m.configured()) return r - 1;
  for (auto it = m.history().rbegin(); it != m.history().rend(); ++it) {
    if (int rank = it->rank_of(r); rank >= 0) {
      return it->members[static_cast<size_t>(rank)].node;
    }
  }
  if (m.pending()) {
    for (const ReplicaInfo& add : m.pending()->delta.adds) {
      if (add.id == r) return add.node;
    }
  }
  return r - 1;
}

const ReplicaCrypto& SbftReplica::crypto_for_epoch(
    const runtime::MembershipEpoch& e) const {
  if (e.epoch == 0 || !opts_.epoch_keys) return opts_.crypto;
  auto it = epoch_crypto_.find(e.epoch);
  if (it != epoch_crypto_.end()) return it->second;
  const ClusterKeys* keys = opts_.epoch_keys->find(e.epoch);
  SBFT_CHECK(keys != nullptr);  // epochs are provisioned before they activate
  ReplicaCrypto rc = ReplicaCrypto::verifier_only(*keys);
  if (int rank = e.rank_of(opts_.id); rank >= 0) {
    rc.sigma_signer = keys->sigma.signers.at(static_cast<size_t>(rank));
    rc.tau_signer = keys->tau.signers.at(static_cast<size_t>(rank));
    rc.pi_signer = keys->pi.signers.at(static_cast<size_t>(rank));
  }
  return epoch_crypto_.emplace(e.epoch, std::move(rc)).first->second;
}

bool SbftReplica::verify_cert_pi(const ExecCertificate& cert) const {
  Digest d = cert.exec_digest();
  if (crypto_for_seq(cert.seq).pi_verifier->verify(d, as_span(cert.pi_sig))) {
    return true;
  }
  // A joiner may hold a checkpoint certified under an epoch its membership
  // manager has not installed yet — but only *newer* provisioned epochs may
  // vouch. Falling back to older epochs would let f+1 shareholders of a
  // retired epoch mint certificates for arbitrary state (the single-source
  // checkpoint-trust hazard the PBFT quorum certificate exists to close).
  if (opts_.epoch_keys) {
    uint64_t active_epoch = epoch().epoch;
    for (const auto& [id, keys] : opts_.epoch_keys->epochs()) {
      if (id <= active_epoch) continue;
      if (keys.pi.verifier->verify(d, as_span(cert.pi_sig))) return true;
    }
  }
  return false;
}

ViewChangeVerifiers SbftReplica::view_change_verifiers() const {
  // Post-activation senders are the only ones whose messages can validate
  // under the new epoch; pre-activation stragglers re-send after they
  // activate (the checkpoint protocol drives everyone across the boundary).
  // Checkpoint certificates are the exception — sealed under the *previous*
  // epoch's pi scheme — so their verification is seq-aware.
  const ReplicaCrypto& crypto = crypto_for_epoch(epoch());
  ViewChangeVerifiers verifiers;
  verifiers.sigma = crypto.sigma_verifier.get();
  verifiers.tau = crypto.tau_verifier.get();
  verifiers.pi = crypto.pi_verifier.get();
  verifiers.epoch = &epoch();
  verifiers.verify_checkpoint = [this](const ExecCertificate& cert) {
    return verify_cert_pi(cert);
  };
  return verifiers;
}

SeqNum SbftReplica::reconfig_gate() const {
  if (SeqNum staged = runtime_.membership().pending_activation(); staged > 0) {
    return staged;
  }
  return shadow_gate_ > le() ? shadow_gate_ : 0;
}

void SbftReplica::maybe_refresh_epoch(sim::ActorContext& ctx) {
  if (!runtime_.take_epoch_change()) return;
  cfg_ = epoch().derive_config(opts_.config);
  shadow_gate_ = 0;
  if (!runtime_.membership().is_member(opts_.id)) {
    // Removed: drain. Keep serving state transfer and cached replies; never
    // vote, propose, or start view changes again.
    retired_ = true;
    trace_.instant(ctx.now(), obs::Category::kReconfig, obs::ev::kEpochRetired,
                   0, 0, 0, "epoch", epoch().epoch);
    in_view_change_ = false;
    pending_.clear();
    pending_keys_.clear();
    return;
  }
  // A replica that just joined needs nothing special — the slots above its
  // adopted checkpoint arrive through the normal protocol paths.
  retired_ = false;
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
    try_propose(ctx);
  }
}

SbftReplica::~SbftReplica() = default;

ReplicaStats SbftReplica::stats() const {
  ReplicaStats merged = stats_;
  static_cast<runtime::RuntimeStats&>(merged) = runtime_.stats();
  return merged;
}

void SbftReplica::recover_from_storage() {
  auto recovered = runtime_.recover();
  if (!recovered) return;  // fresh storage, or snapshot failed verification

  view_ = recovered->view;
  vc_target_ = view_;
  progress_marker_ = le();
  next_seq_ = recovered->install_votes(wal_votes_, le() + 1);
  recovered_replay_bytes_ = recovered->replayed_bytes;
}

void SbftReplica::on_start(sim::ActorContext& ctx) {
  // Boot-time replay cost: reading the ledger suffix back and re-executing it
  // is charged like the sequential I/O that produced it.
  if (recovered_replay_bytes_ > 0) {
    ctx.charge(ctx.costs().persist_us(recovered_replay_bytes_));
  }
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
  }
  if (opts_.marker_executor != nullptr &&
      opts_.marker_executor->tick_interval_us() > 0) {
    ctx.set_timer(opts_.marker_executor->tick_interval_us(),
                  timer_id(kShardTickTimer, 0));
  }
  // Recovery replay may have re-run shard decisions whose results the
  // outside world never saw (crash between execute and send): flush them.
  pump_marker_executor(ctx);
  // A restarted replica may have slept through checkpoints (or lost its disk
  // entirely): probe a peer for a newer stable checkpoint right away instead
  // of waiting to notice the gap from protocol traffic.
  if (opts_.recovering) request_state_transfer(ctx);
}

std::optional<Digest> SbftReplica::committed_digest_of(SeqNum s) const {
  auto it = slots_.find(s);
  if (it != slots_.end() && it->second.committed) return it->second.committed_digest;
  if (const runtime::ExecutionRecord* rec = runtime_.record(s)) {
    return rec->block.digest();
  }
  return std::nullopt;
}

SbftReplica::Slot& SbftReplica::slot(SeqNum s) { return slots_[s]; }

SbftReplica::Slot* SbftReplica::find_slot(SeqNum s) {
  auto it = slots_.find(s);
  return it == slots_.end() ? nullptr : &it->second;
}

void SbftReplica::send_to_replica(sim::ActorContext& ctx, ReplicaId r, MessagePtr msg) {
  if (silent()) return;
  ctx.send(node_of(r), std::move(msg));
}

void SbftReplica::broadcast_replicas(sim::ActorContext& ctx, MessagePtr msg) {
  if (silent()) return;
  for (const ReplicaInfo& m : epoch().members) ctx.send(m.node, msg);
}

Bytes SbftReplica::sign_share_maybe_corrupt(const crypto::IThresholdSigner& signer,
                                            const Digest& d) const {
  Bytes share = signer.sign_share(d);
  if (opts_.behavior == ReplicaBehavior::kCorruptShares && !share.empty()) {
    share[0] ^= 0xff;
  }
  return share;
}

void SbftReplica::arm_progress_timer(sim::ActorContext& ctx) {
  if (progress_timer_armed_) return;
  progress_timer_armed_ = true;
  int64_t backoff = opts_.config.view_change_timeout_us
                    << std::min<uint32_t>(vc_attempts_, 6);
  ctx.set_timer(backoff, timer_id(kProgressTimer, 0));
}

// ---------------------------------------------------------------------------
// Dispatch

void SbftReplica::on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ClientRequestMsg>) {
          handle_client_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, PrePrepareMsg>) {
          handle_pre_prepare(from, m, ctx);
        } else if constexpr (std::is_same_v<T, SignShareMsg>) {
          handle_sign_share(m, ctx);
        } else if constexpr (std::is_same_v<T, FullCommitProofMsg>) {
          handle_full_commit_proof(m, ctx);
        } else if constexpr (std::is_same_v<T, PrepareMsg>) {
          handle_prepare(m, ctx);
        } else if constexpr (std::is_same_v<T, CommitShareMsg>) {
          handle_commit_share(m, ctx);
        } else if constexpr (std::is_same_v<T, FullCommitProofSlowMsg>) {
          handle_full_commit_proof_slow(m, ctx);
        } else if constexpr (std::is_same_v<T, SignStateMsg>) {
          handle_sign_state(m, ctx);
        } else if constexpr (std::is_same_v<T, FullExecuteProofMsg>) {
          handle_full_execute_proof(m, ctx);
        } else if constexpr (std::is_same_v<T, ViewChangeMsg>) {
          handle_view_change(m, ctx);
        } else if constexpr (std::is_same_v<T, NewViewMsg>) {
          handle_new_view(m, ctx);
        } else if constexpr (std::is_same_v<T, GetBlockRequestMsg>) {
          handle_get_block_request(m, ctx);
        } else if constexpr (std::is_same_v<T, GetBlockReplyMsg>) {
          handle_get_block_reply(m, ctx);
        } else if constexpr (std::is_same_v<T, StateTransferRequestMsg>) {
          handle_state_transfer_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateTransferReplyMsg>) {
          handle_state_transfer_reply(m, ctx);
        } else if constexpr (std::is_same_v<T, StateManifestMsg>) {
          handle_state_manifest(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateChunkRequestMsg>) {
          handle_state_chunk_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateChunkMsg>) {
          handle_state_chunk(from, m, ctx);
        } else if constexpr (std::is_same_v<T, ReconfigBlockMsg>) {
          handle_reconfig_block(m, ctx);
        } else if constexpr (std::is_same_v<T, TxVoteMsg> ||
                             std::is_same_v<T, TxDecisionMsg>) {
          // Cross-shard 2PC traffic belongs to the marker executor; the pump
          // below relays its responses and stages decision markers.
          if (opts_.marker_executor != nullptr) {
            opts_.marker_executor->on_network(from, msg, ctx.now());
          }
        }
        // PBFT baseline messages are ignored by SBFT replicas.
      },
      msg);
  pump_marker_executor(ctx);
}

void SbftReplica::on_timer(uint64_t id, sim::ActorContext& ctx) {
  SeqNum s = timer_payload(id);
  switch (timer_kind(id)) {
    case kBatchTimer: {
      // Flush partial batches so low load never waits forever (§V-C "or
      // reaching a timeout").
      if (is_primary() && !in_view_change_) try_propose(ctx, /*flush_partial=*/true);
      if (is_primary()) {
        ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
      }
      break;
    }
    case kFastPathTimer: {
      Slot* sl = find_slot(s);
      if (!sl || sl->committed || !sl->coll_active) break;
      if (!sl->coll_sent_fast && !sl->coll_sent_prepare) collector_try_prepare(s, ctx);
      break;
    }
    case kStaggerFast: {
      Slot* sl = find_slot(s);
      const auto* ev = runtime_.evidence().find(s);
      if (sl && sl->coll_active && !(ev && ev->has_fast_proof) && !sl->committed)
        collector_try_fast(s, ctx, /*from_stagger=*/true);
      break;
    }
    case kStaggerPrepare: {
      Slot* sl = find_slot(s);
      const auto* ev = runtime_.evidence().find(s);
      if (sl && sl->coll_active && !(ev && ev->has_prepared) && !sl->committed &&
          !sl->coll_sent_prepare)
        collector_try_prepare(s, ctx);
      break;
    }
    case kStaggerSlow: {
      Slot* sl = find_slot(s);
      const auto* ev = runtime_.evidence().find(s);
      if (sl && sl->coll_active && !(ev && ev->has_slow_proof) && !sl->committed)
        collector_try_slow_proof(s, ctx);
      break;
    }
    case kStaggerExec: {
      ecollector_try_proof(s, ctx, /*from_stagger=*/true);
      break;
    }
    case kProgressTimer: {
      progress_timer_armed_ = false;
      bool outstanding = !pending_.empty() || forwarded_waiting_ ||
                         (!slots_.empty() && slots_.rbegin()->first > le()) ||
                         in_view_change_;
      if (le() > progress_marker_) {
        // Progress was made; assume forwarded requests were served (if not,
        // the client's retry re-raises the flag).
        progress_marker_ = le();
        forwarded_waiting_ = false;
        if (outstanding) arm_progress_timer(ctx);
        break;
      }
      if (outstanding) {
        start_view_change(std::max(view_, vc_target_) + 1, ctx);
      }
      break;
    }
    case kShareFallback: {
      Slot* sl = find_slot(s);
      if (!sl || sl->committed || !sl->has_pp || sl->pp_view != view_ ||
          in_view_change_ || retired_)
        break;
      SignShareMsg share;
      share.seq = s;
      share.view = sl->pp_view;
      share.block_digest = sl->block_digest;
      share.h = sl->h;
      share.replica = opts_.id;
      share.sigma_share = sl->own_sigma_share;
      share.tau_share =
          sign_share_maybe_corrupt(*crypto_for_seq(s).tau_signer, sl->h);
      ctx.charge(ctx.costs().bls_sign_share_us);
      send_to_replica(ctx, epoch().primary_of(view_),
                      make_message(std::move(share)));
      break;
    }
    case kStateFallback: {
      const runtime::ExecutionRecord* rec = runtime_.record(s);
      if (rec == nullptr || !rec->cert.pi_sig.empty() || in_view_change_ ||
          retired_ || crypto_for_seq(s).pi_signer == nullptr)
        break;
      SignStateMsg ss;
      ss.seq = s;
      ss.replica = opts_.id;
      ss.exec_digest = rec->cert.exec_digest();
      ss.pi_share = sign_share_maybe_corrupt(*crypto_for_seq(s).pi_signer,
                                             rec->cert.exec_digest());
      ctx.charge(ctx.costs().bls_sign_share_us);
      send_to_replica(ctx, epoch().primary_of(view_),
                      make_message(std::move(ss)));
      break;
    }
    case kStateTransferTimer: {
      runtime::StateTransferManager& st = runtime_.state_transfer();
      if (st.chunked()) {
        // Single retry loop; the stop/probe decisions live in the manager,
        // shared with the PBFT engine.
        auto tick = st.on_retry_tick(le(), state_transfer_behind(), runtime_.stats());
        if (tick.stop) {
          st_inflight_ = false;
          if (st_span_open_ && !state_transfer_behind()) {
            st_span_open_ = false;
            trace_.end(ctx.now(), obs::Category::kStateTransfer,
                       obs::ev::kStateTransfer, st_session_, le());
          }
          // The fetch that just ended may have become moot for its *target*
          // while the replica fell behind a newer checkpoint (the cluster
          // moved on mid-fetch): start over, like the legacy path below.
          if (state_transfer_behind()) request_state_transfer(ctx);
          break;
        }
        if (tick.probe) {
          broadcast_state_probe(ctx);
        } else {
          trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                         obs::ev::kStResume, st_session_, le());
        }
        send_chunk_requests(ctx);
        ctx.set_timer(opts_.config.state_transfer_retry_us,
                      timer_id(kStateTransferTimer, 0));
        break;
      }
      st_inflight_ = false;
      if (st_span_open_ && !state_transfer_behind()) {
        st_span_open_ = false;
        trace_.end(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStateTransfer, st_session_, le());
      }
      // Still behind? Try another source.
      if (state_transfer_behind()) request_state_transfer(ctx);
      break;
    }
    case kDonorTickTimer: {
      donor_tick_armed_ = false;
      runtime::StateTransferManager& st = runtime_.state_transfer();
      for (auto& [node, chunk] : st.on_donor_tick(
               runtime_.checkpoints(), opts_.id, runtime_.stats())) {
        ctx.charge(ctx.costs().hash_us(chunk.data.size()));
        if (opts_.corrupt_state_chunks && !chunk.data.empty()) {
          chunk.data[0] ^= 0xff;
        }
        if (!silent()) ctx.send(node, make_message(std::move(chunk)));
      }
      arm_donor_tick(ctx);
      break;
    }
    case kShardTickTimer: {
      if (opts_.marker_executor != nullptr) {
        opts_.marker_executor->on_tick(ctx.now());
        ctx.set_timer(opts_.marker_executor->tick_interval_us(),
                      timer_id(kShardTickTimer, 0));
      }
      break;
    }
    default:
      break;
  }
  pump_marker_executor(ctx);
}

// ---------------------------------------------------------------------------
// Client requests / primary proposal

void SbftReplica::handle_client_request(NodeId from, const ClientRequestMsg& m,
                                        sim::ActorContext& ctx) {
  const Request& req = m.request;
  // The reconfiguration marker id is reserved for blocks the primary builds
  // from ReconfigBlockMsg; a "client" claiming it is forging. Same for the
  // shard 2PC decision marker id (decisions enter via the marker executor).
  if (req.client == kReconfigClient || req.client == kShardTxClient) return;
  // Client request signature ([31]): verified on a worker lane when the node
  // has one; admission continues in the completion.
  ctx.offload(ctx.costs().rsa_verify_us,
              [this, from, req](sim::ActorContext& c) {
                admit_client_request(from, req, c);
              });
}

void SbftReplica::admit_client_request(NodeId from, const Request& req,
                                       sim::ActorContext& ctx) {
  if (const runtime::CachedReply* cached =
          runtime_.cached_reply(req.client, req.timestamp)) {
    // Already executed: serve the cached reply (client retry path, §V-A).
    ClientReplyMsg reply;
    reply.replica = opts_.id;
    reply.client = req.client;
    reply.timestamp = cached->timestamp;
    reply.seq = cached->seq;
    reply.value = cached->value;
    if (!silent()) ctx.send(req.client, make_message(std::move(reply)));
    trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kReplyCached, 0,
                   cached->seq, view_, "client", req.client);
    return;
  }

  if (retired_) return;  // drained: serves caches only, never orders
  // Censoring primary: requests from odd-id clients vanish at admission. The
  // censored client keeps retrying, backups keep forwarding, and their
  // progress timers eventually force a view change to an honest primary.
  if (opts_.behavior == ReplicaBehavior::kCensor && is_primary() &&
      req.client % 2 == 1) {
    return;
  }
  if (is_primary() && !in_view_change_) {
    auto key = std::make_pair(req.client, req.timestamp);
    if (pending_keys_.insert(key).second) {
      pending_.emplace_back(req, ctx.now());
      trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kRequestAdmitted,
                     0, 0, view_, "client", req.client);
    }
    try_propose(ctx);
  } else if (from == req.client) {
    // Forward to the current primary; remember that we owe progress — if the
    // primary never commits this request the timer forces a view change.
    send_to_replica(ctx, epoch().primary_of(view_),
                    make_message(ClientRequestMsg{req}));
    forwarded_waiting_ = true;
    arm_progress_timer(ctx);
  }
}

void SbftReplica::handle_reconfig_block(const ReconfigBlockMsg& m,
                                        sim::ActorContext& ctx) {
  // Administrative channel (docs/reconfiguration.md): the operator submits
  // the delta to every replica; the primary orders it as a marker request.
  // Validation is repeated deterministically at execution, so a stale or
  // inconsistent delta becomes an ordered no-op.
  if (retired_ || silent() || !is_primary() || in_view_change_) return;
  auto key = std::make_pair(kReconfigClient, m.nonce);
  if (pending_keys_.insert(key).second) {
    pending_.emplace_back(make_reconfig_request(m.delta, m.nonce), ctx.now());
  }
  try_propose(ctx, /*flush_partial=*/true);
}

void SbftReplica::pump_marker_executor(sim::ActorContext& ctx) {
  runtime::IMarkerExecutor* ex = opts_.marker_executor;
  if (ex == nullptr) return;
  // Relay whatever the executor queued while handling ordered markers or
  // cross-group messages (votes, decision broadcasts, client results).
  for (auto& [node, msg] : ex->take_outbound()) {
    if (!silent()) ctx.send(node, std::move(msg));
  }
  // Decision markers the executor wants ordered go through the primary's
  // pending queue like reconfiguration blocks; on a backup they are dropped
  // here and re-staged by the executor's tick (possibly under a new primary).
  if (retired_ || silent() || !is_primary() || in_view_change_) {
    ex->take_marker_requests();
    return;
  }
  bool queued = false;
  for (Request& req : ex->take_marker_requests()) {
    auto key = std::make_pair(req.client, req.timestamp);
    if (pending_keys_.insert(key).second) {
      pending_.emplace_back(std::move(req), ctx.now());
      queued = true;
    }
  }
  if (queued) try_propose(ctx, /*flush_partial=*/true);
}

uint64_t SbftReplica::active_window() const {
  uint64_t by_collectors = (epoch().n() - 1) / epoch().num_collectors();  // §VIII
  return std::max<uint64_t>(1, std::min(by_collectors, opts_.config.win / 4));
}

uint32_t SbftReplica::adaptive_batch_size() const {
  if (!opts_.config.adaptive_batching) return opts_.config.max_batch;
  // §VIII: an adaptive controller keyed off outstanding demand. We track an
  // EWMA of the requests the primary currently owes (queued + proposed but
  // not yet executed — the closed-loop client population) and size blocks to
  // absorb it across a couple of concurrent blocks: small batches (low
  // latency) when idle, full batches (amortized fixed costs) under load.
  uint64_t size = static_cast<uint64_t>(avg_pending_ / 2.0) + 1;
  return static_cast<uint32_t>(
      std::clamp<uint64_t>(size, 1, opts_.config.max_batch));
}

void SbftReplica::try_propose(sim::ActorContext& ctx, bool flush_partial) {
  if (!is_primary() || in_view_change_ || retired_) return;
  // Demand sample: queued requests plus requests in unexecuted blocks. The
  // in-flight scan is bounded by the window and recomputed from the slots so
  // it self-corrects across view changes and state transfer.
  uint64_t in_flight_reqs = 0;
  for (auto it = slots_.upper_bound(le());
       it != slots_.end() && it->first < next_seq_; ++it) {
    if (it->second.block) in_flight_reqs += it->second.block->requests.size();
  }
  avg_pending_ = 0.8 * avg_pending_ +
                 0.2 * static_cast<double>(pending_.size() + in_flight_reqs);
  while (!pending_.empty()) {
    // Drop requests already executed (e.g. committed via an earlier view).
    const Request& head = pending_.front().first;
    if (runtime_.replies().is_duplicate(head.client, head.timestamp)) {
      pending_keys_.erase({head.client, head.timestamp});
      pending_.pop_front();
      continue;
    }
    uint64_t in_flight = next_seq_ - 1 - le();
    if (in_flight >= active_window()) return;
    if (next_seq_ > ls() + opts_.config.win) return;
    // Reconfiguration wedge: no slot beyond a pending activation boundary may
    // be ordered under the old epoch's keys/quorums — proposals resume from
    // the boundary once the checkpoint is stable and the epoch active.
    if (SeqNum gate = reconfig_gate(); gate > 0 && next_seq_ > gate) return;

    // The adaptive `batch` value is the *minimum* operations per block
    // (§VIII); partial blocks only leave on the batch timer.
    uint32_t want = adaptive_batch_size();
    if (pending_.size() < want && !flush_partial) return;

    Block block;
    while (!pending_.empty() && block.requests.size() < want) {
      auto [r, arrived] = std::move(pending_.front());
      pending_.pop_front();
      pending_keys_.erase({r.client, r.timestamp});
      h_pending_wait_->record(ctx.now() - arrived);
      ++stats_.proposed_requests;
      block.requests.push_back(std::move(r));
    }
    if (block.requests.empty()) return;
    propose_block(std::move(block), ctx);
  }

  // Primary-driven no-op fill (docs/reconfiguration.md): a staged
  // reconfiguration only activates when the checkpoint at its boundary
  // becomes stable, and checkpoints only form when slots commit. With no
  // client traffic the cluster would idle forever short of the boundary —
  // so on batch-timer ticks the primary fills the gap with empty blocks.
  if (flush_partial && pending_.empty()) {
    SeqNum gate = reconfig_gate();
    while (gate > 0 && next_seq_ <= gate &&
           next_seq_ - 1 - le() < active_window() &&
           next_seq_ <= ls() + opts_.config.win) {
      ++stats_.noop_fill_blocks;
      propose_block(null_block(), ctx);
    }
  }
}

void SbftReplica::propose_block(Block block, sim::ActorContext& ctx) {
  SeqNum s = next_seq_++;
  ctx.charge(ctx.costs().hash_us(block.wire_size()));

  if (opts_.behavior == ReplicaBehavior::kEquivocate && block.requests.size() >= 2) {
    // Send conflicting blocks to the two halves of the cluster: same
    // sequence, different request order => different digests.
    Block alt = block;
    std::swap(alt.requests.front(), alt.requests.back());
    auto msg_a = make_message(PrePrepareMsg{s, view_, block});
    auto msg_b = make_message(PrePrepareMsg{s, view_, alt});
    for (const ReplicaInfo& m : epoch().members) {
      ctx.send(m.node, (m.id % 2 == 0) ? msg_a : msg_b);
    }
    return;
  }

  broadcast_replicas(ctx, make_message(PrePrepareMsg{s, view_, std::move(block)}));
}

// ---------------------------------------------------------------------------
// Fast path (§V-C)

void SbftReplica::handle_pre_prepare(NodeId from, const PrePrepareMsg& m,
                                     sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  // The proposer check is slot-scoped: the slot's epoch elects its primary
  // (equal to the live epoch for every seq the window+wedge guards admit,
  // but the routing must say so — lint:epoch_math).
  if (!from_replica(from, epoch_for_seq(m.seq).primary_of(m.view))) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) {
    if (m.seq > ls() + opts_.config.win) arm_progress_timer(ctx);
    return;
  }
  // Reconfiguration wedge: refuse slots beyond a pending activation boundary
  // (they belong to the next epoch's keys and quorums).
  if (SeqNum gate = reconfig_gate(); gate > 0 && m.seq > gate) return;
  Slot& sl = slot(m.seq);
  if (sl.has_pp && sl.pp_view >= m.view) return;  // one pre-prepare per view
  // Authenticate the batched client requests on a worker lane; acceptance
  // (state mutation, share signing) continues serially once they verify.
  // The guards re-run in the completion: a view change or checkpoint may
  // have advanced while verification was in flight.
  int64_t cost =
      static_cast<int64_t>(m.block.requests.size()) * ctx.costs().rsa_verify_us;
  ctx.offload(cost, [this, seq = m.seq, v = m.view,
                     block = m.block](sim::ActorContext& c) mutable {
    if (in_view_change_ || v != view_ || retired_) return;
    if (seq <= ls() || seq > ls() + opts_.config.win) return;
    if (SeqNum gate = reconfig_gate(); gate > 0 && seq > gate) return;
    accept_pre_prepare(seq, v, std::move(block), c);
  });
}

void SbftReplica::accept_pre_prepare(SeqNum s, ViewNum v, Block block,
                                     sim::ActorContext& ctx) {
  if (retired_) return;
  // Only members of the slot's epoch vote (a joiner hears the enlarged
  // cluster's broadcasts before it has adopted the epoch that admits it —
  // and holds no signer for any earlier scheme).
  if (!epoch_for_seq(s).contains(opts_.id)) return;
  Slot& sl = slot(s);
  if (sl.has_pp && sl.pp_view >= v) return;
  Digest digest = block.digest();
  // A block carrying a reconfiguration marker raises the pre-execution shadow
  // of the activation boundary: later slots are refused until the marker
  // executes (when the runtime's staged boundary takes over) or the slot is
  // superseded. Without this, pre-boundary keys could sign post-boundary
  // slots in the window between ordering and executing the marker.
  for (const Request& req : block.requests) {
    if (decode_reconfig_request(req)) {
      uint64_t interval = opts_.config.checkpoint_interval();
      SeqNum boundary = (s + interval - 1) / interval * interval;
      shadow_gate_ = std::max(shadow_gate_, boundary);
    }
  }
  // Anti-equivocation across restarts: a previous incarnation's persisted
  // vote at this (or a later) view binds this one to the same digest.
  if (auto wv = wal_votes_.find(s);
      wv != wal_votes_.end() && wv->second.first >= v &&
      !(wv->second.second == digest)) {
    return;
  }
  runtime_.wal_record_vote(s, v, digest);
  sl.has_pp = true;
  sl.pp_view = v;
  sl.block_digest = digest;
  sl.block = std::move(block);
  sl.h = slot_hash(s, v, sl.block_digest);
  sl.awaiting_block = false;
  if (sl.pp_time < 0) sl.pp_time = ctx.now();
  // Slot span: accepted pre-prepare -> executed. The span id folds the view
  // in so a slot re-accepted after a view change opens a fresh span (the
  // superseded one stays dangling, which Perfetto renders as unfinished).
  trace_.begin(ctx.now(), obs::Category::kSlot, obs::ev::kSlot,
               (v << 32) | s, s, v);
  ctx.charge(ctx.costs().hash_us(64));

  // Sign both shares (sigma for the fast path, tau for Linear-PBFT, §V-E),
  // under the keys of the epoch that governs this slot.
  const ReplicaCrypto& crypto = crypto_for_seq(s);
  sl.own_sigma_share = sign_share_maybe_corrupt(*crypto.sigma_signer, sl.h);
  Bytes tau_share = sign_share_maybe_corrupt(*crypto.tau_signer, sl.h);
  ctx.charge(2 * ctx.costs().bls_sign_share_us);

  SignShareMsg share;
  share.seq = s;
  share.view = v;
  share.block_digest = sl.block_digest;
  share.h = sl.h;
  share.replica = opts_.id;
  share.sigma_share = sl.own_sigma_share;
  share.tau_share = tau_share;
  auto msg = make_message(std::move(share));
  for (ReplicaId collector : c_collectors(epoch_for_seq(s), s, v)) {
    send_to_replica(ctx, collector, msg);
  }
  // If the designated collectors stall (e.g. all c+1 are faulty), re-send the
  // shares to the primary — the always-last fallback collector (§V-E).
  ctx.set_timer(2 * opts_.config.fast_path_timeout_us, timer_id(kShareFallback, s));
  arm_progress_timer(ctx);

  if (sl.committed) try_execute(ctx);  // proof may have arrived before the block
}

void SbftReplica::handle_sign_share(const SignShareMsg& m, sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
  if (signer_of(m.replica, m.seq) == 0) return;  // not a member of the epoch
  // The primary is the always-last fallback collector: replicas re-send
  // their shares to it only when a slot stalls (kShareFallback).
  auto collectors = commit_collectors(epoch_for_seq(m.seq), m.seq, m.view);
  int rank = collector_rank(collectors, opts_.id);
  if (rank < 0) return;
  if (m.h != slot_hash(m.seq, m.view, m.block_digest)) {
    ++stats_.invalid_shares_seen;
    return;
  }

  Slot& sl = slot(m.seq);
  if (sl.coll_view != m.view || !sl.coll_active) {
    sl.coll_view = m.view;
    sl.coll_active = true;
    sl.coll_shares.clear();
    sl.coll_commit_shares.clear();
    sl.coll_sent_fast = sl.coll_sent_prepare = sl.coll_sent_slow = false;
  }
  sl.coll_shares[m.h].emplace(m.replica, Slot::Shares{m.sigma_share, m.tau_share});
  sl.coll_digest_of_h[m.h] = m.block_digest;

  // Arm the fast->slow fallback timer on first contact (§V-E trigger).
  if (!sl.coll_fast_timer_set) {
    sl.coll_fast_timer_set = true;
    int64_t delay = opts_.config.fast_path_enabled
                        ? opts_.config.fast_path_timeout_us +
                              rank * opts_.collector_stagger_us
                        : 0;  // fast path disabled: prepare as soon as possible
    if (opts_.config.fast_path_enabled) {
      ctx.set_timer(delay, timer_id(kFastPathTimer, m.seq));
    }
  }

  size_t count = sl.coll_shares[m.h].size();
  if (opts_.config.fast_path_enabled &&
      count >= epoch_for_seq(m.seq).fast_quorum() &&
      !sl.coll_sent_fast) {
    if (rank == 0) {
      collector_try_fast(m.seq, ctx, false);
    } else if (!sl.coll_stagger_fast_set) {
      sl.coll_stagger_fast_set = true;
      ctx.set_timer(rank * opts_.collector_stagger_us, timer_id(kStaggerFast, m.seq));
    }
  }
  if (!opts_.config.fast_path_enabled &&
      count >= epoch_for_seq(m.seq).slow_quorum() &&
      !sl.coll_sent_prepare) {
    if (rank == 0) {
      collector_try_prepare(m.seq, ctx);
    } else if (!sl.coll_stagger_prepare_set) {
      sl.coll_stagger_prepare_set = true;
      ctx.set_timer(rank * opts_.collector_stagger_us,
                    timer_id(kStaggerPrepare, m.seq));
    }
  }
}

void SbftReplica::collector_try_fast(SeqNum s, sim::ActorContext& ctx,
                                     bool /*from_stagger*/) {
  Slot* slp = find_slot(s);
  if (!slp || slp->coll_sent_fast) return;
  Slot& sl = *slp;
  for (auto& [h, shares] : sl.coll_shares) {
    if (sl.coll_sent_fast) break;  // an inline completion already proved s
    if (shares.size() < epoch_for_seq(s).fast_quorum()) continue;
    if (sl.coll_fast_verifying.count(h)) continue;  // combine already queued
    std::vector<crypto::SignatureShare> sigma_shares;
    sigma_shares.reserve(shares.size());
    for (auto& [replica, pair] : shares)
      sigma_shares.push_back({signer_of(replica, s), pair.sigma});
    // Batch-verify then combine, on a worker lane — combining slot s overlaps
    // collecting s+1..s+w. Group-signature mode (n-out-of-n) applies when
    // every replica contributed (§VIII).
    bool group_mode = shares.size() == epoch_for_seq(s).n();
    int64_t cost = ctx.costs().batch_verify_us(sigma_shares.size()) +
                   ctx.costs().combine_us(epoch_for_seq(s).fast_quorum(), group_mode);
    sl.coll_fast_verifying.insert(h);
    ViewNum cv = sl.coll_view;
    ctx.offload(cost, [this, s, h, cv, sigma_shares = std::move(sigma_shares)](
                          sim::ActorContext& c) {
      Slot* sp = find_slot(s);
      if (!sp) return;  // checkpoint retired the slot mid-verification
      sp->coll_fast_verifying.erase(h);
      if (sp->coll_sent_fast || !sp->coll_active || sp->coll_view != cv) return;
      auto sig = crypto_for_seq(s).sigma_verifier->combine(h, sigma_shares);
      if (!sig) {
        ++stats_.invalid_shares_seen;
        // Shares that arrived while this combine was in flight were skipped
        // by the inflight guard; if the quorum grew, retry with the larger
        // set. (Inline completions run synchronously — the set cannot have
        // grown, so this never recurses at one lane.)
        auto it = sp->coll_shares.find(h);
        if (it != sp->coll_shares.end() && it->second.size() > sigma_shares.size())
          collector_try_fast(s, c, false);
        return;  // invalid shares filtered; wait for more
      }
      sp->coll_sent_fast = true;
      trace_.instant(c.now(), obs::Category::kSlot, obs::ev::kFastProofFormed,
                     0, s, sp->coll_view, "shares", sigma_shares.size());
      FullCommitProofMsg proof;
      proof.seq = s;
      proof.view = sp->coll_view;
      proof.block_digest = sp->coll_digest_of_h[h];
      proof.sigma_sig = std::move(*sig);
      broadcast_replicas(c, make_message(std::move(proof)));
    });
  }
}

// ---------------------------------------------------------------------------
// Linear-PBFT slow path (§V-E)

void SbftReplica::collector_try_prepare(SeqNum s, sim::ActorContext& ctx) {
  Slot* slp = find_slot(s);
  if (!slp || slp->coll_sent_prepare || slp->coll_sent_fast) return;
  Slot& sl = *slp;
  for (auto& [h, shares] : sl.coll_shares) {
    if (sl.coll_sent_prepare || sl.coll_sent_fast) break;
    if (shares.size() < epoch_for_seq(s).slow_quorum()) continue;
    if (sl.coll_prepare_verifying.count(h)) continue;
    std::vector<crypto::SignatureShare> tau_shares;
    tau_shares.reserve(shares.size());
    for (auto& [replica, pair] : shares)
      tau_shares.push_back({signer_of(replica, s), pair.tau});
    int64_t cost = ctx.costs().batch_verify_us(tau_shares.size()) +
                   ctx.costs().combine_us(epoch_for_seq(s).slow_quorum(), false);
    sl.coll_prepare_verifying.insert(h);
    ViewNum cv = sl.coll_view;
    ctx.offload(cost, [this, s, h, cv, tau_shares = std::move(tau_shares)](
                          sim::ActorContext& c) {
      Slot* sp = find_slot(s);
      if (!sp) return;
      sp->coll_prepare_verifying.erase(h);
      if (sp->coll_sent_prepare || sp->coll_sent_fast || !sp->coll_active ||
          sp->coll_view != cv) {
        return;
      }
      auto sig = crypto_for_seq(s).tau_verifier->combine(h, tau_shares);
      if (!sig) {
        ++stats_.invalid_shares_seen;
        auto it = sp->coll_shares.find(h);
        if (it != sp->coll_shares.end() && it->second.size() > tau_shares.size())
          collector_try_prepare(s, c);
        return;
      }
      sp->coll_sent_prepare = true;
      trace_.instant(c.now(), obs::Category::kSlot, obs::ev::kPrepareFormed, 0,
                     s, sp->coll_view, "shares", tau_shares.size());
      sp->coll_tau = *sig;
      sp->coll_h = h;
      sp->coll_block_digest = sp->coll_digest_of_h[h];
      PrepareMsg prep;
      prep.seq = s;
      prep.view = sp->coll_view;
      prep.block_digest = sp->coll_block_digest;
      prep.tau_sig = std::move(*sig);
      broadcast_replicas(c, make_message(std::move(prep)));
    });
  }
}

void SbftReplica::handle_prepare(const PrepareMsg& m, sim::ActorContext& ctx) {
  if (m.view < view_ || (in_view_change_ && m.view == view_) || retired_) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
  // Verify the combined tau on a worker lane; certificate adoption and the
  // commit share reply continue serially. The entry guards re-run in the
  // completion against state that moved during verification.
  ctx.offload(ctx.costs().bls_verify_combined_us, [this, m](sim::ActorContext& c) {
    if (m.view < view_ || (in_view_change_ && m.view == view_) || retired_) return;
    if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
    Digest h = slot_hash(m.seq, m.view, m.block_digest);
    if (!crypto_for_seq(m.seq).tau_verifier->verify(h, as_span(m.tau_sig))) {
      ++stats_.invalid_shares_seen;
      return;
    }
    // A valid tau(h) for a future view proves a slow quorum operates there; a
    // lagging/recovered replica can fast-forward and process the prepare.
    adopt_verified_view(m.view, c);
    if (in_view_change_ || m.view != view_) return;
    Slot& sl = slot(m.seq);
    if (const auto* ev = runtime_.evidence().find(m.seq);
        ev && ev->has_prepared && ev->prepared_view < m.view) {
      // The commit round is bound to one certificate: a fresh tau(h) from a
      // later view starts a fresh round (without this, a slot whose slow
      // round stalled in view v can never commit in any later view).
      sl.sent_commit_share = false;
    }
    runtime_.evidence().record_prepared(m.seq, m.view, m.block_digest,
                                        m.tau_sig);
    // Fallback-stage collectors (the c+1 C-collectors plus the primary as the
    // last staggered collector, §V-E) remember the certificate so they can
    // aggregate commit shares.
    auto collectors = commit_collectors(epoch_for_seq(m.seq), m.seq, m.view);
    if (collector_rank(collectors, opts_.id) >= 0 && sl.coll_tau.empty()) {
      sl.coll_view = m.view;
      sl.coll_active = true;
      sl.coll_tau = m.tau_sig;
      sl.coll_h = h;
      sl.coll_block_digest = m.block_digest;
    }

    if (!sl.sent_commit_share && epoch_for_seq(m.seq).contains(opts_.id)) {
      sl.sent_commit_share = true;
      Digest d2 = commit_hash(crypto::sha256(as_span(m.tau_sig)));
      Bytes share = sign_share_maybe_corrupt(*crypto_for_seq(m.seq).tau_signer, d2);
      c.charge(c.costs().bls_sign_share_us);
      CommitShareMsg cs;
      cs.seq = m.seq;
      cs.view = m.view;
      cs.commit_digest = d2;
      cs.replica = opts_.id;
      cs.tau_share = std::move(share);
      auto msg = make_message(std::move(cs));
      for (ReplicaId collector : collectors) send_to_replica(c, collector, msg);
    }
  });
}

void SbftReplica::handle_commit_share(const CommitShareMsg& m, sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  if (signer_of(m.replica, m.seq) == 0) return;
  auto collectors = commit_collectors(epoch_for_seq(m.seq), m.seq, m.view);
  int rank = collector_rank(collectors, opts_.id);
  if (rank < 0) return;
  Slot* slp = find_slot(m.seq);
  if (!slp || slp->coll_tau.empty() || slp->coll_sent_slow) return;
  Slot& sl = *slp;
  // Only shares over the commit digest of our certificate count.
  Digest expected = commit_hash(crypto::sha256(as_span(sl.coll_tau)));
  if (!(m.commit_digest == expected)) return;
  sl.coll_commit_shares.emplace(m.replica, m.tau_share);

  if (sl.coll_commit_shares.size() >= epoch_for_seq(m.seq).slow_quorum()) {
    if (rank == 0) {
      collector_try_slow_proof(m.seq, ctx);
    } else if (!sl.coll_stagger_slow_set) {
      // Staggered backups — the primary is always the last to activate
      // (§V-E); they act only if the faster collectors stayed silent.
      sl.coll_stagger_slow_set = true;
      ctx.set_timer(rank * opts_.collector_stagger_us, timer_id(kStaggerSlow, m.seq));
    }
  }
}

void SbftReplica::collector_try_slow_proof(SeqNum s, sim::ActorContext& ctx) {
  Slot* slp = find_slot(s);
  if (!slp || slp->coll_sent_slow || slp->coll_tau.empty()) return;
  Slot& sl = *slp;
  if (sl.coll_slow_verifying) return;
  if (sl.coll_commit_shares.size() < epoch_for_seq(s).slow_quorum()) return;
  Digest d2 = commit_hash(crypto::sha256(as_span(sl.coll_tau)));
  std::vector<crypto::SignatureShare> shares;
  shares.reserve(sl.coll_commit_shares.size());
  for (auto& [replica, share] : sl.coll_commit_shares)
    shares.push_back({signer_of(replica, s), share});
  int64_t cost = ctx.costs().batch_verify_us(shares.size()) +
                 ctx.costs().combine_us(epoch_for_seq(s).slow_quorum(), false);
  sl.coll_slow_verifying = true;
  ViewNum cv = sl.coll_view;
  ctx.offload(cost, [this, s, cv, d2,
                     shares = std::move(shares)](sim::ActorContext& c) {
    Slot* sp = find_slot(s);
    if (!sp) return;
    sp->coll_slow_verifying = false;
    if (sp->coll_sent_slow || sp->coll_view != cv || sp->coll_tau.empty()) return;
    auto sig = crypto_for_seq(s).tau_verifier->combine(d2, shares);
    if (!sig) {
      ++stats_.invalid_shares_seen;
      if (sp->coll_commit_shares.size() > shares.size())
        collector_try_slow_proof(s, c);
      return;
    }
    sp->coll_sent_slow = true;
    trace_.instant(c.now(), obs::Category::kSlot, obs::ev::kSlowProofFormed, 0,
                   s, sp->coll_view, "shares", shares.size());
    FullCommitProofSlowMsg proof;
    proof.seq = s;
    proof.view = sp->coll_view;
    proof.block_digest = sp->coll_block_digest;
    proof.tau_sig = sp->coll_tau;
    proof.tau_tau_sig = std::move(*sig);
    broadcast_replicas(c, make_message(std::move(proof)));
  });
}

// ---------------------------------------------------------------------------
// Commit triggers

void SbftReplica::handle_full_commit_proof(const FullCommitProofMsg& m,
                                           sim::ActorContext& ctx) {
  if (m.seq <= le()) return;
  // Combined-signature check on a worker lane; the commit itself (state
  // mutation, execution) stays serial in the completion.
  ctx.offload(ctx.costs().bls_verify_combined_us, [this, m](sim::ActorContext& c) {
    if (m.seq <= le()) return;
    Digest h = slot_hash(m.seq, m.view, m.block_digest);
    if (!crypto_for_seq(m.seq).sigma_verifier->verify(h, as_span(m.sigma_sig))) {
      ++stats_.invalid_shares_seen;
      return;
    }
    adopt_verified_view(m.view, c);
    runtime_.evidence().record_fast_proof(m.seq, m.view, m.block_digest,
                                          m.sigma_sig);
    commit(m.seq, m.block_digest, /*fast=*/true, c);
  });
}

void SbftReplica::handle_full_commit_proof_slow(const FullCommitProofSlowMsg& m,
                                                sim::ActorContext& ctx) {
  if (m.seq <= le()) return;
  ctx.offload(2 * ctx.costs().bls_verify_combined_us, [this, m](sim::ActorContext& c) {
    if (m.seq <= le()) return;
    Digest h = slot_hash(m.seq, m.view, m.block_digest);
    Digest d2 = commit_hash(crypto::sha256(as_span(m.tau_sig)));
    const ReplicaCrypto& crypto = crypto_for_seq(m.seq);
    if (!crypto.tau_verifier->verify(h, as_span(m.tau_sig)) ||
        !crypto.tau_verifier->verify(d2, as_span(m.tau_tau_sig))) {
      ++stats_.invalid_shares_seen;
      return;
    }
    adopt_verified_view(m.view, c);
    runtime_.evidence().record_slow_proof(m.seq, m.view, m.block_digest,
                                          m.tau_sig, m.tau_tau_sig);
    commit(m.seq, m.block_digest, /*fast=*/false, c);
  });
}

void SbftReplica::commit(SeqNum s, const Digest& block_digest, bool fast,
                         sim::ActorContext& ctx) {
  Slot& sl = slot(s);
  if (sl.committed) return;
  sl.committed = true;
  sl.committed_fast = fast;
  sl.committed_digest = block_digest;
  sl.commit_time = ctx.now();
  if (sl.pp_time >= 0) {
    h_pp_to_commit_->record(ctx.now() - sl.pp_time);
    ++stats_.timed_slots;
  }
  if (fast) {
    ++stats_.fast_commits;
  } else {
    ++stats_.slow_commits;
  }
  trace_.instant(ctx.now(), obs::Category::kSlot,
                 fast ? obs::ev::kCommitFast : obs::ev::kCommitSlow, 0, s,
                 sl.pp_view, "digest", obs::digest_prefix(block_digest.data()));
  if (!sl.block || !(sl.block_digest == block_digest)) {
    // Committed by proof without the payload: fetch it.
    if (!sl.has_pp) {
      // Proof-driven catch-up (never saw the pre-prepare): open the slot
      // span at the commit so the execute end has a begin to pair with.
      trace_.begin(ctx.now(), obs::Category::kSlot, obs::ev::kSlot,
                   (sl.pp_view << 32) | s, s, sl.pp_view);
    }
    sl.awaiting_block = true;
    sl.awaiting_digest = block_digest;
    sl.awaiting_is_commit = true;
    if (!silent()) {
      GetBlockRequestMsg req;
      req.requester = opts_.id;
      req.seq = s;
      req.block_digest = block_digest;
      broadcast_replicas(ctx, make_message(std::move(req)));
    }
    return;
  }
  try_execute(ctx);
}

// ---------------------------------------------------------------------------
// Execution and acknowledgement (§V-D)

void SbftReplica::try_execute(sim::ActorContext& ctx) {
  for (;;) {
    SeqNum s = le() + 1;
    Slot* sl = find_slot(s);
    if (!sl || !sl->committed) return;
    if (!sl->block || !(sl->block_digest == sl->committed_digest)) return;
    execute_block(s, ctx);
  }
}

void SbftReplica::execute_block(SeqNum s, sim::ActorContext& ctx) {
  Slot& sl = *find_slot(s);
  // The runtime executes the block (dedup through the reply cache), persists
  // it, extends the d_s chain, and captures the checkpoint snapshot.
  runtime::ExecutionRecord& rec =
      runtime_.execute_block(s, sl.pp_view, *sl.block, ctx);
  Digest d = rec.cert.exec_digest();

  if (sl.commit_time >= 0) {
    h_commit_to_exec_->record(ctx.now() - sl.commit_time);
  }
  trace_.end(ctx.now(), obs::Category::kSlot, obs::ev::kSlot,
             (sl.pp_view << 32) | s, s, sl.pp_view);

  // Without the execution collector (Linear-PBFT variants), every replica
  // replies to every client directly — the f+1-messages-per-client cost that
  // ingredient 3 removes.
  if (!opts_.config.execution_collector && !silent()) {
    for (size_t l = 0; l < rec.block.requests.size(); ++l) {
      const Request& req = rec.block.requests[l];
      ClientReplyMsg reply;
      reply.replica = opts_.id;
      reply.client = req.client;
      reply.timestamp = req.timestamp;
      reply.seq = s;
      reply.value = rec.values[l];
      ctx.send(req.client, make_message(std::move(reply)));
    }
  }

  auto buffered = std::move(slot(s).buffered_pi);

  // Sign the new state (pi threshold) and send to the E-collectors. A
  // non-member of the slot's epoch (joiner catching up) holds no pi signer
  // and contributes nothing — the members' f+1 shares suffice.
  if (epoch_for_seq(s).contains(opts_.id) && crypto_for_seq(s).pi_signer) {
    Bytes pi_share = sign_share_maybe_corrupt(*crypto_for_seq(s).pi_signer, d);
    ctx.charge(ctx.costs().bls_sign_share_us);
    SignStateMsg ss;
    ss.seq = s;
    ss.replica = opts_.id;
    ss.exec_digest = d;
    ss.pi_share = std::move(pi_share);
    auto msg = make_message(std::move(ss));
    for (ReplicaId collector : e_collectors(epoch_for_seq(s), s, view_)) {
      send_to_replica(ctx, collector, msg);
    }
    ctx.set_timer(2 * opts_.config.fast_path_timeout_us,
                  timer_id(kStateFallback, s));
  }
  // Replay pi shares that arrived before we executed.
  for (auto& [replica, share] : buffered) {
    SignStateMsg replay;
    replay.seq = s;
    replay.replica = replica;
    replay.exec_digest = d;  // digest re-checked against the share itself
    replay.pi_share = std::move(share);
    handle_sign_state(replay, ctx);
  }
}

void SbftReplica::handle_sign_state(const SignStateMsg& m, sim::ActorContext& ctx) {
  if (retired_) return;
  uint32_t signer = signer_of(m.replica, m.seq);
  if (signer == 0) return;  // not a member of the slot's epoch
  auto collectors = fallback_e_collectors(epoch_for_seq(m.seq), m.seq, view_);
  int rank = collector_rank(collectors, opts_.id);
  if (rank < 0) return;
  Slot& sl = slot(m.seq);
  if (m.seq > le()) {
    sl.buffered_pi.emplace_back(m.replica, m.pi_share);
    ++stats_.buffered_pi_shares;
    return;
  }
  const runtime::ExecutionRecord* rec = runtime_.record(m.seq);
  if (rec == nullptr || sl.e_sent) return;
  Digest d = rec->cert.exec_digest();
  // Only shares over our own executed digest can combine (robust filtering;
  // the CPU cost is charged as a batch verification at combine time, §III).
  if (!crypto_for_seq(m.seq).pi_verifier->verify_share(signer, d,
                                                       as_span(m.pi_share))) {
    ++stats_.invalid_shares_seen;
    return;
  }
  sl.pi_shares.emplace(m.replica, m.pi_share);
  if (sl.pi_shares.size() >= epoch_for_seq(m.seq).exec_quorum()) {
    if (rank == 0) {
      ecollector_try_proof(m.seq, ctx, false);
    } else if (!sl.e_stagger_set) {
      sl.e_stagger_set = true;
      ctx.set_timer(rank * opts_.collector_stagger_us, timer_id(kStaggerExec, m.seq));
    }
  }
}

void SbftReplica::ecollector_try_proof(SeqNum s, sim::ActorContext& ctx,
                                       bool /*from_stagger*/) {
  Slot* slp = find_slot(s);
  runtime::ExecutionRecord* rec = runtime_.record(s);
  if (!slp || rec == nullptr || slp->e_sent) return;
  // Another collector already certified this sequence?
  if (!rec->cert.pi_sig.empty()) return;
  Slot& sl = *slp;
  if (sl.e_verifying) return;
  if (sl.pi_shares.size() < epoch_for_seq(s).exec_quorum()) return;
  Digest d = rec->cert.exec_digest();
  std::vector<crypto::SignatureShare> shares;
  shares.reserve(sl.pi_shares.size());
  for (auto& [replica, share] : sl.pi_shares)
    shares.push_back({signer_of(replica, s), share});
  int64_t cost = ctx.costs().batch_verify_us(shares.size()) +
                 ctx.costs().combine_us(epoch_for_seq(s).exec_quorum(), false);
  sl.e_verifying = true;
  ctx.offload(cost, [this, s, d, shares = std::move(shares)](sim::ActorContext& c) {
    Slot* sp = find_slot(s);
    if (!sp) return;
    sp->e_verifying = false;
    runtime::ExecutionRecord* rec2 = runtime_.record(s);
    if (rec2 == nullptr || sp->e_sent || !rec2->cert.pi_sig.empty()) return;
    if (!(rec2->cert.exec_digest() == d)) return;  // re-executed differently
    auto sig = crypto_for_seq(s).pi_verifier->combine(d, shares);
    if (!sig) {
      ++stats_.invalid_shares_seen;
      if (sp->pi_shares.size() > shares.size())
        ecollector_try_proof(s, c, false);
      return;
    }
    sp->e_sent = true;
    rec2->cert.pi_sig = *sig;
    FullExecuteProofMsg proof;
    proof.seq = s;
    proof.exec_digest = d;
    proof.pi_sig = std::move(*sig);
    broadcast_replicas(c, make_message(std::move(proof)));
    if (opts_.config.execution_collector) send_execute_acks(s, c);
  });
}

void SbftReplica::send_execute_acks(SeqNum s, sim::ActorContext& ctx) {
  if (silent()) return;
  const runtime::ExecutionRecord* rec_ptr = runtime_.record(s);
  if (rec_ptr == nullptr) return;
  const runtime::ExecutionRecord& rec = *rec_ptr;
  if (rec.leaves.empty()) return;
  h_exec_to_ack_->record(ctx.now() - rec.executed_at);
  ++stats_.acked_blocks;
  trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kExecAcks, 0, s,
                 view_, "requests", rec.block.requests.size());
  merkle::BlockMerkleTree tree(rec.leaves);
  for (size_t l = 0; l < rec.block.requests.size(); ++l) {
    const Request& req = rec.block.requests[l];
    ExecuteAckMsg ack;
    ack.client = req.client;
    ack.timestamp = req.timestamp;
    ack.index = l;
    ack.value = rec.values[l];
    ack.cert = rec.cert;
    ack.proof = tree.prove(l);
    ctx.charge(ctx.costs().hash_us(256));  // proof assembly
    ctx.send(req.client, make_message(std::move(ack)));
  }
}

void SbftReplica::handle_full_execute_proof(const FullExecuteProofMsg& m,
                                            sim::ActorContext& ctx) {
  ctx.offload(ctx.costs().bls_verify_combined_us, [this, m](sim::ActorContext& c) {
    if (!crypto_for_seq(m.seq).pi_verifier->verify(m.exec_digest,
                                                   as_span(m.pi_sig))) {
      ++stats_.invalid_shares_seen;
      return;
    }
    runtime::ExecutionRecord* rec = runtime_.record(m.seq);
    if (rec != nullptr && rec->cert.exec_digest() == m.exec_digest) {
      if (rec->cert.pi_sig.empty()) rec->cert.pi_sig = m.pi_sig;
      advance_checkpoint(m.seq, c);
    } else if (m.seq > le() + opts_.config.win / 2) {
      // Far behind the cluster: catch up via state transfer.
      request_state_transfer(c);
    }
  });
}

void SbftReplica::advance_checkpoint(SeqNum s, sim::ActorContext& ctx) {
  if (s <= ls() || s % opts_.config.checkpoint_interval() != 0) return;
  const runtime::ExecutionRecord* rec = runtime_.record(s);
  if (rec == nullptr || rec->cert.pi_sig.empty()) return;
  // The runtime promotes the snapshot captured when s executed (it matches
  // the certificate's state root by construction), persists the checkpoint
  // to the WAL, and garbage-collects execution records.
  if (!runtime_.advance_stable(rec->cert, ctx)) return;
  slots_.erase(slots_.begin(), slots_.lower_bound(ls() + 1));
  runtime_.evidence().gc_through(ls());
  // A staged reconfiguration whose boundary just became stable activates here.
  maybe_refresh_epoch(ctx);
}

// ---------------------------------------------------------------------------
// Block fetch

void SbftReplica::handle_get_block_request(const GetBlockRequestMsg& m,
                                           sim::ActorContext& ctx) {
  if (silent()) return;
  const Block* found = nullptr;
  if (Slot* sl = find_slot(m.seq); sl && sl->block &&
                                   sl->block_digest == m.block_digest) {
    found = &*sl->block;
  } else if (const runtime::ExecutionRecord* rec = runtime_.record(m.seq);
             rec != nullptr && rec->block.digest() == m.block_digest) {
    found = &rec->block;
  }
  if (!found) return;
  GetBlockReplyMsg reply;
  reply.seq = m.seq;
  reply.block = *found;
  send_to_replica(ctx, m.requester, make_message(std::move(reply)));
}

void SbftReplica::handle_get_block_reply(const GetBlockReplyMsg& m,
                                         sim::ActorContext& ctx) {
  Slot* sl = find_slot(m.seq);
  if (!sl || !sl->awaiting_block) return;
  ctx.charge(ctx.costs().hash_us(m.block.wire_size()));
  if (!(m.block.digest() == sl->awaiting_digest)) return;
  sl->awaiting_block = false;
  if (sl->awaiting_is_commit) {
    sl->block = m.block;
    sl->block_digest = sl->awaiting_digest;
    try_execute(ctx);
  } else {
    accept_pre_prepare(m.seq, view_, m.block, ctx);
  }
}

// ---------------------------------------------------------------------------
// View change (§V-G)

void SbftReplica::adopt_verified_view(ViewNum v, sim::ActorContext& ctx) {
  // Only called after a combined threshold signature bound to view v checked
  // out, so a quorum of replicas demonstrably operates in v. A replica that
  // slept through the view change (crash/recovery, long partition) would
  // otherwise wait for a NewViewMsg that was broadcast while it was down and
  // will never be re-sent. Replicas that are mid-view-change keep the normal
  // NewViewMsg path (it adopts the in-flight slots).
  if (v <= view_ || in_view_change_) return;
  view_ = v;
  trace_.instant(ctx.now(), obs::Category::kViewChange, obs::ev::kViewAdopted,
                 0, 0, v);
  vc_target_ = v;
  vc_attempts_ = 0;
  new_view_sent_ = false;
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(v));
  progress_marker_ = le();
  runtime_.wal_record_view(v);
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
  }
}

void SbftReplica::start_view_change(ViewNum target, sim::ActorContext& ctx) {
  if (target <= view_ || retired_) return;
  if (in_view_change_ && target <= vc_target_) return;
  in_view_change_ = true;
  vc_target_ = target;
  ++vc_attempts_;
  ++stats_.view_changes;
  // One session span per target view; escalating to a higher target closes
  // the superseded session and opens the next.
  if (vc_span_ != 0 && vc_span_ != target) {
    trace_.end(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
               vc_span_, 0, vc_span_, "superseded", 1);
  }
  if (vc_span_ != target) {
    vc_span_ = target;
    trace_.begin(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
                 target, 0, target);
  }

  ViewChangeMsg msg = build_view_change(target);
  vc_msgs_[target][opts_.id] = msg;
  broadcast_replicas(ctx, make_message(ViewChangeMsg(msg)));
  arm_progress_timer(ctx);  // exponential backoff to target+1 if this stalls
  if (epoch().primary_of(target) == opts_.id) maybe_send_new_view(target, ctx);
}

ViewChangeMsg SbftReplica::build_view_change(ViewNum target) const {
  ViewChangeMsg msg;
  msg.sender = opts_.id;
  msg.next_view = target;
  msg.ls = ls();
  if (ls() > 0) msg.checkpoint = runtime_.checkpoints().stable_cert();
  for (const auto& [s, sl] : slots_) {
    if (s <= ls() || s > ls() + opts_.config.win) continue;
    SlotEvidence e;
    e.seq = s;
    const runtime::SlotEvidenceRecord* ev = runtime_.evidence().find(s);
    if (ev && ev->has_slow_proof) {
      e.lm_kind = SlowEvidence::kFullProof;
      e.lm_view = ev->slow_view;
      e.lm_block_digest = ev->slow_digest;
      e.lm_sig = ev->slow_sig;
      e.lm_inner_sig = ev->slow_inner_sig;
    } else if (ev && ev->has_prepared) {
      e.lm_kind = SlowEvidence::kPrepareCert;
      e.lm_view = ev->prepared_view;
      e.lm_block_digest = ev->prepared_digest;
      e.lm_sig = ev->prepared_sig;
    }
    if (ev && ev->has_fast_proof) {
      e.fm_kind = FastEvidence::kFullProof;
      e.fm_view = ev->fast_view;
      e.fm_block_digest = ev->fast_digest;
      e.fm_sig = ev->fast_sig;
    } else if (sl.has_pp && !sl.own_sigma_share.empty() &&
               sl.h == slot_hash(s, sl.pp_view, sl.block_digest)) {
      // The fm vote is only evidence if the retained share actually signs
      // (seq, pp_view, digest). A slot adopted through enter_new_view's
      // decided branch bumps pp_view without re-signing, so its stale (or,
      // after a wiped restart, absent) share would poison the whole
      // view-change message — receivers drop it, quorums never form, and
      // the decided slot's full proof above already carries the safety
      // evidence. Found by the schedule fuzzer (seed 65): two replicas
      // poisoned this way plus one silent byzantine left view changes
      // permanently unable to converge.
      e.fm_kind = FastEvidence::kVote;
      e.fm_view = sl.pp_view;
      e.fm_block_digest = sl.block_digest;
      e.fm_sig = sl.own_sigma_share;
    }
    if (e.lm_kind == SlowEvidence::kNone && e.fm_kind == FastEvidence::kNone) continue;
    if (sl.block) e.block = sl.block;
    msg.slots.push_back(std::move(e));
  }
  return msg;
}

void SbftReplica::handle_view_change(const ViewChangeMsg& m, sim::ActorContext& ctx) {
  if (m.next_view <= view_ || retired_) return;
  ViewChangeVerifiers verifiers = view_change_verifiers();
  ctx.charge(ctx.costs().batch_verify_us(2 * m.slots.size() + 1));
  if (!validate_view_change(cfg_, verifiers, m)) return;
  vc_msgs_[m.next_view][m.sender] = m;

  // Join rule (§VII): f+1 distinct replicas ahead of us force our hand.
  if (m.next_view > vc_target_ || !in_view_change_) {
    size_t ahead = 0;
    for (const auto& [target, senders] : vc_msgs_) {
      if (target > view_) ahead = std::max(ahead, senders.size());
    }
    if (ahead >= cfg_.f + 1) {
      ViewNum best = view_;
      for (const auto& [target, senders] : vc_msgs_) {
        if (senders.size() >= cfg_.f + 1) best = std::max(best, target);
      }
      if (best > view_) start_view_change(best, ctx);
    }
  }
  if (epoch().primary_of(m.next_view) == opts_.id)
    maybe_send_new_view(m.next_view, ctx);
}

void SbftReplica::maybe_send_new_view(ViewNum target, sim::ActorContext& ctx) {
  if (new_view_sent_ && vc_target_ >= target) return;
  auto it = vc_msgs_.find(target);
  if (it == vc_msgs_.end() || it->second.size() < cfg_.view_change_quorum())
    return;
  NewViewMsg nv;
  nv.view = target;
  for (const auto& [sender, msg] : it->second) {
    nv.proofs.push_back(msg);
    if (nv.proofs.size() == cfg_.view_change_quorum()) break;
  }
  new_view_sent_ = true;
  trace_.instant(ctx.now(), obs::Category::kViewChange, obs::ev::kNewViewSent,
                 0, 0, target);
  broadcast_replicas(ctx, make_message(NewViewMsg(nv)));
  enter_new_view(nv, ctx);
}

void SbftReplica::handle_new_view(const NewViewMsg& m, sim::ActorContext& ctx) {
  if (m.view <= view_ || retired_) return;
  ViewChangeVerifiers verifiers = view_change_verifiers();
  size_t evidence = 0;
  for (const auto& p : m.proofs) evidence += 2 * p.slots.size() + 1;
  ctx.charge(ctx.costs().batch_verify_us(evidence));
  if (!validate_new_view(cfg_, verifiers, m)) return;
  enter_new_view(m, ctx);
}

void SbftReplica::enter_new_view(const NewViewMsg& m, sim::ActorContext& ctx) {
  if (m.view < view_ || (m.view == view_ && !in_view_change_) || retired_) return;
  ViewChangeVerifiers verifiers = view_change_verifiers();

  view_ = m.view;
  in_view_change_ = false;
  if (vc_span_ != 0) {
    trace_.end(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
               vc_span_, 0, vc_span_, "entered_view", m.view);
    vc_span_ = 0;
  } else {
    // Entered on the strength of a NewView alone (never locally timed out).
    trace_.instant(ctx.now(), obs::Category::kViewChange, obs::ev::kViewEntered,
                   0, 0, m.view);
  }
  vc_target_ = m.view;
  vc_attempts_ = 0;
  new_view_sent_ = false;
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(m.view));
  runtime_.wal_record_view(m.view);

  SeqNum stable = select_stable_seq(cfg_, verifiers, m.proofs);
  if (stable > le()) request_state_transfer(ctx);

  SeqNum max_evidence = stable;
  for (const auto& p : m.proofs) {
    for (const auto& e : p.slots) max_evidence = std::max(max_evidence, e.seq);
  }

  for (SeqNum j = stable + 1; j <= max_evidence; ++j) {
    if (j <= le()) continue;  // already executed; safety ensures consistency
    SafeValue safe = compute_safe_value(cfg_, verifiers, j, m.proofs);
    ctx.charge(ctx.costs().batch_verify_us(4));
    Slot& sl = slot(j);
    switch (safe.kind) {
      case SafeValue::Kind::kDecided: {
        // Record the proof so future view changes re-propagate it.
        if (safe.decided_fast) {
          runtime_.evidence().record_fast_proof(j, safe.evidence_view,
                                                safe.block_digest,
                                                safe.decided_proof);
        } else {
          runtime_.evidence().record_slow_proof(j, safe.evidence_view,
                                                safe.block_digest,
                                                safe.decided_inner,
                                                safe.decided_proof);
        }
        if (safe.block && !(sl.has_pp && sl.block_digest == safe.block_digest)) {
          sl.has_pp = true;
          sl.pp_view = m.view;
          sl.block = safe.block;
          sl.block_digest = safe.block_digest;
          // Adopted from view-change evidence, not via accept_pre_prepare:
          // open the slot span here so its execute end has a begin to pair
          // with.
          trace_.begin(ctx.now(), obs::Category::kSlot, obs::ev::kSlot,
                       (m.view << 32) | j, j, m.view);
        }
        commit(j, safe.block_digest, safe.decided_fast, ctx);
        break;
      }
      case SafeValue::Kind::kAdopt: {
        if (safe.block) {
          accept_pre_prepare(j, m.view, *safe.block, ctx);
        } else {
          sl.awaiting_block = true;
          sl.awaiting_digest = safe.block_digest;
          sl.awaiting_is_commit = false;
          GetBlockRequestMsg req;
          req.requester = opts_.id;
          req.seq = j;
          req.block_digest = safe.block_digest;
          broadcast_replicas(ctx, make_message(std::move(req)));
        }
        break;
      }
      case SafeValue::Kind::kNoop: {
        accept_pre_prepare(j, m.view, null_block(), ctx);
        break;
      }
    }
  }

  next_seq_ = std::max<SeqNum>(max_evidence + 1, stable + 1);
  progress_marker_ = le();
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
    try_propose(ctx);
  }
  arm_progress_timer(ctx);
}

// ---------------------------------------------------------------------------
// State transfer (§VIII; chunked protocol spec in docs/state_transfer.md)

bool SbftReplica::state_transfer_behind() const {
  // A committed-but-unfetchable slot or delivered traffic far past le() means
  // blocks this replica will never see again; a wiped/restarted boot that has
  // recovered nothing yet must also keep probing (its first probe may race
  // ahead of any checkpoint existing). A joiner — bootstrapped with a roster
  // that does not contain it — keeps probing until the epoch admitting it
  // arrives via a fetched checkpoint (docs/reconfiguration.md).
  const Slot* next = nullptr;
  if (auto it = slots_.find(le() + 1); it != slots_.end()) next = &it->second;
  return (!slots_.empty() && slots_.rbegin()->first > le() + opts_.config.win) ||
         (next && next->committed && !next->block) ||
         (opts_.recovering && le() == 0 && ls() == 0) ||
         (!retired_ && !runtime_.membership().is_member(opts_.id));
}

void SbftReplica::request_state_transfer(sim::ActorContext& ctx) {
  // A retired (removed) replica drains: it serves its retained checkpoint
  // but never fetches newer state — adopting one would advance its
  // execution past the drain point.
  if (silent() || retired_) return;
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (st.chunked()) {
    if (st.active()) return;  // a fetch round is already running
    ++runtime_.stats().state_transfers;
    if (!st_span_open_) {
      st_span_open_ = true;
      trace_.begin(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStateTransfer, ++st_session_, le());
    }
    broadcast_state_probe(ctx);
    if (!st_inflight_) {
      st_inflight_ = true;  // retry timer armed
      ctx.set_timer(opts_.config.state_transfer_retry_us,
                    timer_id(kStateTransferTimer, 0));
    }
    return;
  }
  if (st_inflight_) return;
  st_inflight_ = true;
  ++runtime_.stats().state_transfers;
  if (!st_span_open_) {
    st_span_open_ = true;
    trace_.begin(ctx.now(), obs::Category::kStateTransfer,
                 obs::ev::kStateTransfer, ++st_session_, le());
  }
  // Ask a pseudo-random member; retry rotates the choice.
  const auto& members = epoch().members;
  ReplicaId peer = members[ctx.rng().below(members.size())].id;
  if (peer == opts_.id) {
    peer = members[(epoch().rank_of(peer) + 1) % members.size()].id;
  }
  StateTransferRequestMsg req;
  req.requester = opts_.id;
  req.have_seq = le();
  send_to_replica(ctx, peer, make_message(std::move(req)));
  ctx.set_timer(opts_.config.view_change_timeout_us, timer_id(kStateTransferTimer, 0));
}

void SbftReplica::handle_state_transfer_request(NodeId from,
                                                const StateTransferRequestMsg& m,
                                                sim::ActorContext& ctx) {
  if (silent()) return;
  // Ship the consistent (certificate, snapshot) pair — never the bare stable
  // checkpoint, whose snapshot may not have been captured. Replies go to the
  // requesting *node*: a joining replica is not in any epoch the donor holds
  // yet, so its id resolves through no roster.
  const runtime::CheckpointManager& cp = runtime_.checkpoints();
  if (cp.snapshot_cert().pi_sig.empty() || cp.snapshot_cert().seq <= m.have_seq)
    return;
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (st.chunked()) {
    // Building the chunk tree hashes the whole envelope — charged only when
    // the cache is cold for this checkpoint, not on every repeated probe
    // (note_checkpoint keeps it warm in steady state).
    bool cold = st.donor_cached_seq() != cp.snapshot_cert().seq;
    auto manifest = st.make_manifest(cp, m, opts_.id);
    if (!manifest) return;
    if (cold) ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
    ctx.send(from, make_message(std::move(*manifest)));
    return;
  }
  StateTransferReplyMsg reply;
  reply.seq = cp.snapshot_cert().seq;
  reply.cert = cp.snapshot_cert();
  reply.service_snapshot = cp.snapshot();
  ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
  ctx.send(from, make_message(std::move(reply)));
}

void SbftReplica::handle_state_transfer_reply(const StateTransferReplyMsg& m,
                                              sim::ActorContext& ctx) {
  if (m.seq <= le()) {
    st_inflight_ = false;
    if (st_span_open_ && !state_transfer_behind()) {
      st_span_open_ = false;
      trace_.end(ctx.now(), obs::Category::kStateTransfer,
                 obs::ev::kStateTransfer, st_session_, le());
    }
    return;
  }
  ctx.charge(ctx.costs().bls_verify_combined_us);
  if (m.cert.seq != m.seq || !verify_cert_pi(m.cert)) return;
  // The runtime verifies the snapshot envelope against the certificate's
  // state root, installs the service + reply cache, and records the
  // checkpoint in the WAL.
  if (!runtime_.adopt_checkpoint(m.cert, as_span(m.service_snapshot), ctx)) return;
  slots_.erase(slots_.begin(), slots_.upper_bound(m.seq));
  runtime_.evidence().gc_through(m.seq);
  st_inflight_ = false;
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStAdopt,
                 st_session_, m.seq);
  if (st_span_open_) {
    st_span_open_ = false;
    trace_.end(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStateTransfer,
               st_session_, m.seq);
  }
  maybe_refresh_epoch(ctx);  // the adopted envelope may carry a newer epoch
  try_execute(ctx);
}

void SbftReplica::handle_state_manifest(NodeId from, const StateManifestMsg& m,
                                        sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (silent() || !st.chunked() || !st.active() || m.seq <= le()) return;
  // The donor field must match the authenticated channel's sender: donor
  // identity drives registration and (on an invalid chunk) exclusion, so a
  // Byzantine replica must not be able to impersonate honest donors. All
  // cheap structural checks run before the pairing is charged — an excluded
  // donor spamming manifests must not cost a signature verification each.
  if (!from_replica(from, m.donor)) return;
  if (m.cert.seq != m.seq || st.donor_excluded(m.donor)) return;
  // The certificate must be pi-certified before the manifest can target the
  // fetch; the chunk root itself is bound end-to-end by the final state-root
  // check in adopt_checkpoint (a lying manifest sender is excluded there).
  // Seq-aware + provisioned-epoch fallback: a joiner fetches checkpoints
  // certified under epochs it has not installed yet.
  ctx.charge(ctx.costs().bls_verify_combined_us);
  if (!verify_cert_pi(m.cert)) return;
  bool accepted = st.on_manifest(m, le(), runtime_.checkpoints(), runtime_.stats());
  if (accepted) {
    trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStManifest,
                   st_session_, m.seq, 0, "donor", m.donor);
  }
  if (accepted) {
    // A delta manifest may have seeded every chunk from the local base — the
    // fetch can be complete without a single wire chunk.
    if (st.fetch_complete()) {
      complete_chunked_transfer(ctx);
    } else {
      send_chunk_requests(ctx);
    }
  }
}

void SbftReplica::handle_state_chunk_request(NodeId from,
                                             const StateChunkRequestMsg& m,
                                             sim::ActorContext& ctx) {
  if (silent()) return;
  std::vector<StateChunkMsg> chunks = runtime_.state_transfer().make_chunks(
      runtime_.checkpoints(), m, opts_.id, runtime_.stats(), from);
  for (StateChunkMsg& c : chunks) {
    ctx.charge(ctx.costs().hash_us(c.data.size()));
    if (opts_.corrupt_state_chunks && !c.data.empty()) c.data[0] ^= 0xff;
    ctx.send(from, make_message(std::move(c)));  // joiners resolve by node only
  }
  arm_donor_tick(ctx);
}

void SbftReplica::broadcast_state_probe(sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  const runtime::CheckpointManager& cp = runtime_.checkpoints();
  // The probe advertises this replica's retained checkpoint as the delta
  // base; computing its transfer root chunk-hashes the local snapshot when
  // the donor cache is cold (mirrors the manifest-side cold charge).
  bool cold =
      cp.has_shippable() && st.donor_cached_seq() != cp.snapshot_cert().seq;
  StateTransferRequestMsg probe = st.make_probe(cp, opts_.id, le());
  if (cold && probe.base_seq > 0) {
    ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
  }
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStProbe,
                 st_session_, le());
  broadcast_replicas(ctx, make_message(std::move(probe)));
}

void SbftReplica::arm_donor_tick(sim::ActorContext& ctx) {
  if (donor_tick_armed_ || !runtime_.state_transfer().donor_tick_needed()) return;
  donor_tick_armed_ = true;
  ctx.set_timer(opts_.config.state_transfer_donor_tick_us,
                timer_id(kDonorTickTimer, 0));
}

void SbftReplica::handle_state_chunk(NodeId from, const StateChunkMsg& m,
                                     sim::ActorContext& ctx) {
  if (silent()) return;
  // Spoofed donor ids could exclude honest donors (see handle_state_manifest).
  if (!from_replica(from, m.donor)) return;
  runtime::StateTransferManager& st = runtime_.state_transfer();
  ctx.charge(ctx.costs().hash_us(m.data.size()));  // leaf hash + proof path
  using Verdict = runtime::StateTransferManager::ChunkVerdict;
  switch (Verdict verdict = st.on_chunk(m, runtime_.stats()); verdict) {
    case Verdict::kCompleted:
      trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                     obs::ev::kStChunkStored, st_session_, m.seq, 0, "index",
                     m.index);
      complete_chunked_transfer(ctx);
      break;
    case Verdict::kStored:
    case Verdict::kInvalid:
      trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                     verdict == Verdict::kStored ? obs::ev::kStChunkStored
                                                 : obs::ev::kStChunkInvalid,
                     st_session_, m.seq, 0,
                     verdict == Verdict::kStored ? "index" : "donor",
                     verdict == Verdict::kStored ? m.index : m.donor);
      // Keep the pipeline full; an invalid chunk also re-plans the indices
      // that were outstanding at the now-excluded donor.
      send_chunk_requests(ctx);
      break;
    case Verdict::kDuplicate:
    case Verdict::kRejected:
      break;
  }
}

void SbftReplica::send_chunk_requests(sim::ActorContext& ctx) {
  for (auto& [donor, req] : runtime_.state_transfer().plan_requests(opts_.id)) {
    send_to_replica(ctx, donor, make_message(std::move(req)));
  }
}

void SbftReplica::complete_chunked_transfer(sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  ExecCertificate cert = st.target_cert();
  Bytes envelope = st.take_envelope();
  bool adopted = runtime_.adopt_checkpoint(cert, as_span(envelope), ctx);
  // The stale-target vs lying-manifest distinction lives in the manager,
  // shared with the PBFT engine.
  if (st.on_adopt_result(adopted, le())) broadcast_state_probe(ctx);
  if (!adopted) {
    // Session stays open: the retry tick re-probes or stops it.
    trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStAdoptFailed, st_session_, cert.seq);
    return;
  }
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStAdopt,
                 st_session_, cert.seq, 0, "digest",
                 obs::digest_prefix(cert.exec_digest().data()));
  if (st_span_open_) {
    st_span_open_ = false;
    trace_.end(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStateTransfer,
               st_session_, cert.seq);
  }
  slots_.erase(slots_.begin(), slots_.upper_bound(cert.seq));
  runtime_.evidence().gc_through(cert.seq);
  maybe_refresh_epoch(ctx);  // the adopted envelope may carry a newer epoch
  try_execute(ctx);
}

}  // namespace sbft::core
