#include "core/crypto_context.h"

#include "common/serde.h"
#include "crypto/sha256.h"

namespace sbft::core {

ClusterKeys ClusterKeys::generate(Rng& rng, const ProtocolConfig& config) {
  ClusterKeys keys;
  keys.sigma = crypto::deal_sim_bls(rng, config.n(), config.fast_quorum());
  keys.tau = crypto::deal_sim_bls(rng, config.n(), config.slow_quorum());
  keys.pi = crypto::deal_sim_bls(rng, config.n(), config.exec_quorum());
  return keys;
}

ClusterKeys ClusterKeys::generate_rsa(Rng& rng, const ProtocolConfig& config,
                                      int modulus_bits) {
  ClusterKeys keys;
  keys.sigma = crypto::deal_shoup_rsa(rng, config.n(), config.fast_quorum(), modulus_bits);
  keys.tau = crypto::deal_shoup_rsa(rng, config.n(), config.slow_quorum(), modulus_bits);
  keys.pi = crypto::deal_shoup_rsa(rng, config.n(), config.exec_quorum(), modulus_bits);
  return keys;
}

ClusterKeys ClusterKeys::generate_for(Rng& rng, uint32_t n, uint32_t f, uint32_t c) {
  ClusterKeys keys;
  keys.sigma = crypto::deal_sim_bls(rng, n, 3 * f + c + 1);
  keys.tau = crypto::deal_sim_bls(rng, n, 2 * f + c + 1);
  keys.pi = crypto::deal_sim_bls(rng, n, f + 1);
  return keys;
}

ReplicaCrypto ReplicaCrypto::for_replica(const ClusterKeys& keys, ReplicaId id) {
  ReplicaCrypto rc = verifier_only(keys);
  rc.sigma_signer = keys.sigma.signers.at(id - 1);
  rc.tau_signer = keys.tau.signers.at(id - 1);
  rc.pi_signer = keys.pi.signers.at(id - 1);
  return rc;
}

ReplicaCrypto ReplicaCrypto::verifier_only(const ClusterKeys& keys) {
  ReplicaCrypto rc;
  rc.sigma_verifier = keys.sigma.verifier;
  rc.tau_verifier = keys.tau.verifier;
  rc.pi_verifier = keys.pi.verifier;
  return rc;
}

namespace {

std::vector<ReplicaId> draw_collectors(std::vector<ReplicaId> pool, uint32_t count,
                                       SeqNum s, ViewNum v, std::string_view domain) {
  // Deterministic pseudo-random draw seeded by (domain, s, v).
  Writer w;
  w.str(domain);
  w.u64(s);
  w.u64(v);
  Digest seed = crypto::sha256(as_span(w.data()));
  Rng rng(fnv1a(as_span(seed)));

  // Partial Fisher-Yates for the first `count` entries.
  std::vector<ReplicaId> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    size_t j = i + static_cast<size_t>(rng.below(pool.size() - i));
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

std::vector<ReplicaId> pick_collectors(const ProtocolConfig& config, SeqNum s,
                                       ViewNum v, std::string_view domain) {
  const uint32_t n = config.n();
  const ReplicaId primary = config.primary_of(v);
  const uint32_t count = std::min(config.num_collectors(), n - 1);
  std::vector<ReplicaId> pool;
  pool.reserve(n - 1);
  for (ReplicaId r = 1; r <= n; ++r) {
    if (r != primary) pool.push_back(r);
  }
  return draw_collectors(std::move(pool), count, s, v, domain);
}

std::vector<ReplicaId> pick_collectors(const runtime::MembershipEpoch& epoch,
                                       SeqNum s, ViewNum v,
                                       std::string_view domain) {
  const ReplicaId primary = epoch.primary_of(v);
  const uint32_t count = std::min(epoch.num_collectors(), epoch.n() - 1);
  std::vector<ReplicaId> pool;
  pool.reserve(epoch.n() - 1);
  for (const ReplicaInfo& m : epoch.members) {  // id-sorted: 1..n at genesis
    if (m.id != primary) pool.push_back(m.id);
  }
  return draw_collectors(std::move(pool), count, s, v, domain);
}

}  // namespace

std::vector<ReplicaId> c_collectors(const ProtocolConfig& config, SeqNum s, ViewNum v) {
  return pick_collectors(config, s, v, "sbft.c-collector");
}

std::vector<ReplicaId> e_collectors(const ProtocolConfig& config, SeqNum s, ViewNum v) {
  return pick_collectors(config, s, v, "sbft.e-collector");
}

std::vector<ReplicaId> commit_collectors(const ProtocolConfig& config, SeqNum s,
                                         ViewNum v) {
  std::vector<ReplicaId> out = c_collectors(config, s, v);
  out.push_back(config.primary_of(v));
  return out;
}

std::vector<ReplicaId> fallback_e_collectors(const ProtocolConfig& config, SeqNum s,
                                             ViewNum v) {
  std::vector<ReplicaId> out = e_collectors(config, s, v);
  out.push_back(config.primary_of(v));
  return out;
}

std::vector<ReplicaId> c_collectors(const runtime::MembershipEpoch& epoch, SeqNum s,
                                    ViewNum v) {
  return pick_collectors(epoch, s, v, "sbft.c-collector");
}

std::vector<ReplicaId> e_collectors(const runtime::MembershipEpoch& epoch, SeqNum s,
                                    ViewNum v) {
  return pick_collectors(epoch, s, v, "sbft.e-collector");
}

std::vector<ReplicaId> commit_collectors(const runtime::MembershipEpoch& epoch,
                                         SeqNum s, ViewNum v) {
  std::vector<ReplicaId> out = c_collectors(epoch, s, v);
  out.push_back(epoch.primary_of(v));
  return out;
}

std::vector<ReplicaId> fallback_e_collectors(const runtime::MembershipEpoch& epoch,
                                             SeqNum s, ViewNum v) {
  std::vector<ReplicaId> out = e_collectors(epoch, s, v);
  out.push_back(epoch.primary_of(v));
  return out;
}

int collector_rank(const std::vector<ReplicaId>& collectors, ReplicaId replica) {
  for (size_t i = 0; i < collectors.size(); ++i) {
    if (collectors[i] == replica) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace sbft::core
