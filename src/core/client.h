// SBFT client (§V-A): single-message acknowledgement in the common case,
// verified against the execution certificate (Merkle proof + pi threshold
// signature); falls back to PBFT-style f+1 matching replies on timeout.
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/crypto_context.h"
#include "proto/config.h"
#include "proto/message.h"
#include "sim/network.h"

namespace sbft::core {

struct ClientOptions {
  ProtocolConfig config;
  ClientId id = 0;  // must equal the client's simulator node id
  ReplicaCrypto crypto;  // verifier-only view of the cluster keys
  // Per-epoch verifier material after reconfigurations (the operator updates
  // clients alongside replicas; docs/reconfiguration.md). Acks certified
  // under a later epoch's pi scheme verify against these.
  std::shared_ptr<const EpochKeyTable> epoch_keys;
  /// Closed-loop request count (§IX: "each client sequentially sends 1000
  /// requests"); 0 means run until the simulation ends.
  uint64_t num_requests = 1000;
  /// Produces the next operation payload (request index for variety).
  std::function<Bytes(uint64_t, Rng&)> op_factory;
  /// Modeled client request signature size (RSA-2048 => 256 bytes).
  size_t signature_size = 256;
  int64_t retry_timeout_us = 4'000'000;
  /// Network nodes of the group's replicas, in replica-id order. Empty
  /// derives the genesis mapping (replica r at node r-1); a sharded
  /// deployment passes the group's actual node block (docs/sharding.md).
  std::vector<NodeId> replica_nodes;
};

struct ClientRecord {
  sim::SimTime completed_at = 0;
  int64_t latency_us = 0;
  bool via_fast_ack = false;  // accepted from a single execute-ack
};

/// Pure acknowledgement check (§V-A): recomputes the execution leaf from the
/// client's identity/timestamp and the returned value, verifies the Merkle
/// path to ops_root, rebuilds the chained execution digest and verifies
/// pi(d_s). Exposed for direct (including adversarial) testing.
bool verify_execute_ack(const ReplicaCrypto& crypto, ClientId client,
                        const ExecuteAckMsg& ack);

class SbftClient final : public sim::IActor {
 public:
  explicit SbftClient(ClientOptions options);

  void on_start(sim::ActorContext& ctx) override;
  void on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) override;
  void on_timer(uint64_t id, sim::ActorContext& ctx) override;

  uint64_t completed() const { return records_.size(); }
  uint64_t retries() const { return retries_; }
  uint64_t rejected_acks() const { return rejected_acks_; }
  const std::vector<ClientRecord>& records() const { return records_; }
  bool done() const {
    return opts_.num_requests != 0 && completed() >= opts_.num_requests;
  }

 private:
  void send_next(sim::ActorContext& ctx);
  void complete(bool fast_ack, sim::ActorContext& ctx);
  bool verify_execute_ack(const ExecuteAckMsg& m, sim::ActorContext& ctx) const;

  ClientOptions opts_;
  size_t primary_hint_ = 0;  // index into replica_nodes: believed primary relay
  uint64_t timestamp_ = 0;
  Bytes current_op_;
  bool outstanding_ = false;
  sim::SimTime sent_at_ = 0;
  uint64_t retries_ = 0;
  uint64_t rejected_acks_ = 0;
  uint64_t timer_gen_ = 0;

  // f+1 fallback tally: replica -> value digest for the current timestamp.
  std::map<ReplicaId, Digest> reply_tally_;

  std::vector<ClientRecord> records_;
};

}  // namespace sbft::core
