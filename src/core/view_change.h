// Dual-mode view-change logic (§V-G), implemented as pure functions over a
// fixed set of view-change messages so the safe-value rule — the crux of the
// paper's correctness argument (Lemmas VI.2/VI.3) — is directly unit- and
// property-testable.
//
// Given the set I of 2f+2c+1 view-change messages fixed by the new-view
// message, every replica deterministically computes, per slot j:
//   * kDecided  — a full proof (sigma(h) or tau(tau(h))) appears in I: the
//                 value is committed; adopt-and-commit it.
//   * kAdopt    — the safe value induced by the highest-view evidence:
//                 v* (highest prepare certificate) vs v-hat (highest view at
//                 which some value is "fast": >= f+c+1 matching sign-share
//                 votes with views >= v-hat). Ties prefer the slow-path
//                 certificate (v* >= v-hat), which is what makes the two
//                 concurrent commit modes safe together.
//   * kNoop     — no protected value; propose the null operation.
#pragma once

#include <optional>
#include <vector>

#include "core/crypto_context.h"
#include "proto/config.h"
#include "proto/message.h"

namespace sbft::core {

struct SafeValue {
  enum class Kind { kDecided, kAdopt, kNoop };
  Kind kind = Kind::kNoop;
  Digest block_digest{};        // meaningful for kDecided / kAdopt
  std::optional<Block> block;   // attached if any usable evidence carried it
  // For kDecided: the proof that allows immediate commit.
  Bytes decided_proof;          // sigma(h) or tau(tau(h))
  Bytes decided_inner;          // the inner tau(h) when decided via slow proof
  bool decided_fast = false;    // true if decided via sigma(h)
  ViewNum evidence_view = 0;    // view binding of the decided/adopted h
};

/// Validates one view-change message: checkpoint certificate and every slot
/// evidence signature. Invalid messages must be excluded from I.
bool validate_view_change(const ProtocolConfig& config,
                          const ViewChangeVerifiers& verifiers,
                          const ViewChangeMsg& msg);

/// Validates a new-view message: >= 2f+2c+1 proofs, distinct senders, all for
/// `view`, each individually valid.
bool validate_new_view(const ProtocolConfig& config,
                       const ViewChangeVerifiers& verifiers,
                       const NewViewMsg& msg);

/// Highest stable sequence number proven inside I (max valid checkpoint).
SeqNum select_stable_seq(const ProtocolConfig& config,
                         const ViewChangeVerifiers& verifiers,
                         const std::vector<ViewChangeMsg>& proofs);

/// The safe value for slot j. `proofs` must already be validated; evidence
/// signatures are re-checked here so a forged certificate can never steer
/// the outcome.
SafeValue compute_safe_value(const ProtocolConfig& config,
                             const ViewChangeVerifiers& verifiers, SeqNum j,
                             const std::vector<ViewChangeMsg>& proofs);

/// An empty decision block (the "null" no-op proposal).
Block null_block();

}  // namespace sbft::core
