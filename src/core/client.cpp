#include "core/client.h"

#include "crypto/sha256.h"

namespace sbft::core {

SbftClient::SbftClient(ClientOptions options) : opts_(std::move(options)) {
  SBFT_CHECK(opts_.op_factory != nullptr);
  if (opts_.replica_nodes.empty()) {
    for (NodeId node = 0; node < opts_.config.n(); ++node) {
      opts_.replica_nodes.push_back(node);
    }
  }
}

void SbftClient::on_start(sim::ActorContext& ctx) { send_next(ctx); }

void SbftClient::send_next(sim::ActorContext& ctx) {
  if (done()) return;
  current_op_ = opts_.op_factory(completed(), ctx.rng());
  ++timestamp_;
  outstanding_ = true;
  sent_at_ = ctx.now();
  reply_tally_.clear();

  Request req;
  req.client = opts_.id;
  req.timestamp = timestamp_;
  req.op = current_op_;
  req.client_sig = Bytes(opts_.signature_size, 0xab);  // size-modeled signature
  ctx.charge(ctx.costs().rsa_sign_us);

  // First attempt goes to the replica we believe reaches the primary (any
  // correct replica forwards, §V-A); retries broadcast and rotate the hint.
  ctx.send(opts_.replica_nodes[primary_hint_],
           make_message(ClientRequestMsg{std::move(req)}));
  ctx.set_timer(opts_.retry_timeout_us, ++timer_gen_);
}

bool verify_execute_ack(const ReplicaCrypto& crypto, ClientId client,
                        const ExecuteAckMsg& ack) {
  Digest leaf = exec_leaf(client, ack.timestamp, crypto::sha256(as_span(ack.value)));
  if (!merkle::BlockMerkleTree::verify(ack.cert.ops_root, leaf, ack.proof))
    return false;
  return crypto.pi_verifier->verify(ack.cert.exec_digest(),
                                    as_span(ack.cert.pi_sig));
}

bool SbftClient::verify_execute_ack(const ExecuteAckMsg& m,
                                    sim::ActorContext& ctx) const {
  ctx.charge(ctx.costs().hash_us(512));
  ctx.charge(ctx.costs().bls_verify_combined_us);
  if (core::verify_execute_ack(opts_.crypto, opts_.id, m)) return true;
  // After a reconfiguration the certificate's pi signature belongs to a
  // later epoch's scheme — try every provisioned epoch's verifier.
  if (opts_.epoch_keys) {
    for (const auto& [id, keys] : opts_.epoch_keys->epochs()) {
      ReplicaCrypto rc = ReplicaCrypto::verifier_only(keys);
      if (core::verify_execute_ack(rc, opts_.id, m)) return true;
    }
  }
  return false;
}

void SbftClient::complete(bool fast_ack, sim::ActorContext& ctx) {
  outstanding_ = false;
  ClientRecord rec;
  rec.completed_at = ctx.now();
  rec.latency_us = ctx.now() - sent_at_;
  rec.via_fast_ack = fast_ack;
  records_.push_back(rec);
  send_next(ctx);
}

void SbftClient::on_message(NodeId /*from*/, const Message& msg,
                            sim::ActorContext& ctx) {
  if (!outstanding_) return;
  if (const auto* ack = std::get_if<ExecuteAckMsg>(&msg)) {
    if (ack->client != opts_.id || ack->timestamp != timestamp_) return;
    if (!verify_execute_ack(*ack, ctx)) {
      ++rejected_acks_;
      return;
    }
    complete(/*fast_ack=*/true, ctx);
    return;
  }
  if (const auto* reply = std::get_if<ClientReplyMsg>(&msg)) {
    if (reply->client != opts_.id || reply->timestamp != timestamp_) return;
    if (reply->replica == 0 || reply->replica > opts_.config.n()) return;
    // Each reply carries a replica signature the client must verify — the
    // f+1 acknowledgement cost that SBFT's ingredient 3 removes (§V-A).
    ctx.charge(ctx.costs().rsa_verify_us);
    reply_tally_[reply->replica] = crypto::sha256(as_span(reply->value));
    // f+1 matching replies from distinct replicas (§V-A fallback).
    std::map<Digest, uint32_t> counts;
    for (const auto& [replica, digest] : reply_tally_) ++counts[digest];
    for (const auto& [digest, count] : counts) {
      if (count >= opts_.config.f + 1) {
        complete(/*fast_ack=*/false, ctx);
        return;
      }
    }
  }
}

void SbftClient::on_timer(uint64_t id, sim::ActorContext& ctx) {
  if (!outstanding_ || id != timer_gen_) return;
  ++retries_;
  primary_hint_ =
      (primary_hint_ + 1) % opts_.replica_nodes.size();  // rotate away from a dead node
  // Retry: broadcast to all replicas and ask for the f+1 acknowledgement
  // path (replicas reply directly from their caches once executed).
  Request req;
  req.client = opts_.id;
  req.timestamp = timestamp_;
  req.op = current_op_;
  req.client_sig = Bytes(opts_.signature_size, 0xab);
  auto msg = make_message(ClientRequestMsg{std::move(req)});
  for (NodeId node : opts_.replica_nodes) ctx.send(node, msg);
  ctx.set_timer(opts_.retry_timeout_us, ++timer_gen_);
}

}  // namespace sbft::core
