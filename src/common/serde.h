// Minimal binary serialization: little-endian fixed-width integers plus
// length-prefixed byte strings. Used for message wire encoding (size
// accounting in the simulator) and for computing digests over canonical
// encodings.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace sbft {

class Writer {
 public:
  Writer() = default;
  explicit Writer(size_t reserve) { buf_.reserve(reserve); }

  void u8(uint8_t v) { buf_.push_back(v); }
  void u16(uint16_t v) { put_le(v, 2); }
  void u32(uint32_t v) { put_le(v, 4); }
  void u64(uint64_t v) { put_le(v, 8); }
  void i64(int64_t v) { u64(static_cast<uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// Raw bytes, no length prefix.
  void raw(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  /// Length-prefixed (u32) byte string.
  void bytes(ByteSpan data) {
    u32(static_cast<uint32_t>(data.size()));
    raw(data);
  }
  void str(std::string_view s) { bytes(as_span(s)); }
  void digest(const Digest& d) { raw(as_span(d)); }

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  void put_le(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
  Bytes buf_;
};

/// Non-throwing reader: every accessor returns a default value and latches a
/// failure flag on underflow; callers check ok() once at the end.
class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  uint8_t u8() { return static_cast<uint8_t>(get_le(1)); }
  uint16_t u16() { return static_cast<uint16_t>(get_le(2)); }
  uint32_t u32() { return static_cast<uint32_t>(get_le(4)); }
  uint64_t u64() { return get_le(8); }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  bool boolean() { return u8() != 0; }

  Bytes bytes() {
    uint32_t n = u32();
    if (remaining() < n) {
      fail_ = true;
      return {};
    }
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string str() {
    Bytes b = bytes();
    return std::string(b.begin(), b.end());
  }

  Digest digest() {
    Digest d{};
    if (remaining() < d.size()) {
      fail_ = true;
      return d;
    }
    std::memcpy(d.data(), data_.data() + pos_, d.size());
    pos_ += d.size();
    return d;
  }

  size_t remaining() const { return data_.size() - pos_; }
  size_t pos() const { return pos_; }
  /// Skips `n` bytes (page padding in aligned snapshot formats).
  void skip(size_t n) {
    if (remaining() < n) {
      fail_ = true;
      return;
    }
    pos_ += n;
  }
  bool ok() const { return !fail_; }
  bool at_end() const { return ok() && remaining() == 0; }

 private:
  uint64_t get_le(int n) {
    if (remaining() < static_cast<size_t>(n)) {
      fail_ = true;
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += static_cast<size_t>(n);
    return v;
  }

  ByteSpan data_;
  size_t pos_ = 0;
  bool fail_ = false;
};

}  // namespace sbft
