#include "common/bytes.h"

#include <stdexcept>

namespace sbft {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(ByteSpan data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) throw std::invalid_argument("from_hex: odd length");
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) throw std::invalid_argument("from_hex: bad digit");
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool digest_equal(const Digest& a, const Digest& b) {
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= static_cast<uint8_t>(a[i] ^ b[i]);
  return acc == 0;
}

uint64_t fnv1a(ByteSpan data) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace sbft
