// Basic byte-oriented types and helpers shared by every module.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace sbft {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

/// 32-byte digest (output of SHA-256). Value type, comparable, hashable.
using Digest = std::array<uint8_t, 32>;

inline ByteSpan as_span(const Bytes& b) { return ByteSpan{b.data(), b.size()}; }
inline ByteSpan as_span(const Digest& d) { return ByteSpan{d.data(), d.size()}; }
inline ByteSpan as_span(std::string_view s) {
  return ByteSpan{reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline Bytes to_bytes(ByteSpan s) { return Bytes(s.begin(), s.end()); }

/// Hex encoding (lowercase, no prefix).
std::string to_hex(ByteSpan data);

/// Hex decoding; throws std::invalid_argument on malformed input.
Bytes from_hex(std::string_view hex);

/// Constant-time-ish equality for fixed digests (not security critical in the
/// simulator, but keeps the idiom correct).
bool digest_equal(const Digest& a, const Digest& b);

/// 64-bit FNV-1a over bytes; used only for unordered-map hashing, never for
/// cryptographic purposes.
uint64_t fnv1a(ByteSpan data);

struct DigestHash {
  size_t operator()(const Digest& d) const noexcept {
    uint64_t v;
    std::memcpy(&v, d.data(), sizeof(v));
    return static_cast<size_t>(v);
  }
};

struct BytesHash {
  size_t operator()(const Bytes& b) const noexcept {
    return static_cast<size_t>(fnv1a(ByteSpan{b.data(), b.size()}));
  }
};

}  // namespace sbft
