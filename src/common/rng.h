// Deterministic pseudo-random generator (xoshiro256**). Every stochastic
// choice in the simulator and the workloads flows through one of these so
// experiments are reproducible from a single seed.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sbft {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5bf7d15bull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t next() {
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t below(uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

  Bytes bytes(size_t n) {
    Bytes out(n);
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(next());
    return out;
  }

  /// Derive an independent child generator (for per-node streams).
  Rng fork() { return Rng(next() ^ 0xa02bdbf7bb3c0a7ull); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace sbft
