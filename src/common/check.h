// Internal invariant checks. SBFT_CHECK is always on (these are protocol
// invariants whose violation means a bug, and the cost is negligible next to
// crypto and simulation work).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sbft::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "SBFT_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace sbft::detail

#define SBFT_CHECK(expr)                                            \
  do {                                                              \
    if (!(expr)) ::sbft::detail::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)
