// Authenticated key-value store (§IV "An authenticated key-value store").
//
// State is a byte-string map mirrored into a sparse Merkle tree, so
// state_digest() is a commitment to the entire map and any key's
// presence/value can be proven against it with SmtProof.
//
// Snapshots use a *chunk-stable* layout (docs/state_transfer.md): entries are
// key-ordered and grouped into sections whose boundaries are a pure function
// of the keys present (a key closes its section when a cheap hash of it hits
// a fanout mask), and each section is zero-padded to a multiple of the
// snapshot chunk hint. A small mutation therefore perturbs only the pages of
// its own section instead of shifting every byte after it — the property the
// delta state-transfer path exploits. The pre-paged flat format is still
// accepted by restore() (snapshots persisted in older WALs).
#pragma once

#include <map>
#include <optional>

#include "common/bytes.h"
#include "kv/service.h"
#include "merkle/merkle_tree.h"

namespace sbft::kv {

/// Operation encoding for the KV service. kBatch wraps several simple ops in
/// one request (§IX "in the batching mode each request contains 64
/// operations").
enum class OpType : uint8_t { kPut = 1, kGet = 2, kDelete = 3, kBatch = 4 };

Bytes encode_put(ByteSpan key, ByteSpan value);
Bytes encode_get(ByteSpan key);
Bytes encode_delete(ByteSpan key);
Bytes encode_batch(const std::vector<Bytes>& ops);

struct DecodedOp {
  OpType type;
  Bytes key;
  Bytes value;  // only for kPut
};
std::optional<DecodedOp> decode_op(ByteSpan op);

class KvService final : public IService {
 public:
  KvService() = default;

  Bytes execute(ByteSpan op) override;
  Bytes query(ByteSpan q) const override;
  Digest state_digest() const override { return tree_.root(); }
  Bytes snapshot() const override;
  bool restore(ByteSpan snapshot) override;
  void set_snapshot_chunk_hint(uint32_t page) override { snapshot_page_ = page; }
  std::unique_ptr<IService> clone_empty() const override;
  int64_t last_execute_cost_us(const sim::CostModel& costs) const override {
    return costs.kv_op_us * static_cast<int64_t>(last_op_count_);
  }

  // Direct (non-replicated) access, used by tests and by the EVM layer.
  void put(ByteSpan key, ByteSpan value);
  void erase(ByteSpan key);
  std::optional<Bytes> get(ByteSpan key) const;
  size_t size() const { return data_.size(); }

  /// Membership proof for `key` against state_digest().
  merkle::SmtProof prove(ByteSpan key) const { return tree_.prove(key); }
  /// Verifies a proof produced by prove(): `value` == nullopt proves absence.
  static bool verify(const Digest& root, ByteSpan key,
                     const std::optional<Bytes>& value,
                     const merkle::SmtProof& proof);

 private:
  static Digest leaf_for(ByteSpan key, ByteSpan value);
  bool restore_flat(ByteSpan snapshot);   // pre-paged legacy format
  bool restore_paged(ByteSpan snapshot);  // key-ordered page-aligned sections

  std::map<Bytes, Bytes> data_;  // ordered so snapshots are canonical
  merkle::SparseMerkleTree tree_;
  uint64_t last_op_count_ = 1;
  uint32_t snapshot_page_ = 0;  // section pad unit; <= 1 disables padding
};

}  // namespace sbft::kv
