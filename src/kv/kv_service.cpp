#include "kv/kv_service.h"

#include <algorithm>
#include <cstring>

#include "common/serde.h"

namespace sbft::kv {

namespace {

// Chunk-stable snapshot format (docs/state_transfer.md "chunk-stable
// encoding"): key-ordered sections, each padded to a multiple of the chunk
// hint so a mutation perturbs only its own section's pages.
constexpr char kPagedMagic[8] = {'S', 'B', 'F', 'T', 'K', 'V', 'P', '2'};
constexpr uint32_t kMaxSectionFanout = 4096;
constexpr uint32_t kMaxPage = 1u << 26;

}  // namespace

Bytes encode_put(ByteSpan key, ByteSpan value) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kPut));
  w.bytes(key);
  w.bytes(value);
  return std::move(w).take();
}

Bytes encode_get(ByteSpan key) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kGet));
  w.bytes(key);
  return std::move(w).take();
}

Bytes encode_delete(ByteSpan key) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kDelete));
  w.bytes(key);
  return std::move(w).take();
}

Bytes encode_batch(const std::vector<Bytes>& ops) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kBatch));
  w.u32(static_cast<uint32_t>(ops.size()));
  for (const Bytes& op : ops) w.bytes(as_span(op));
  return std::move(w).take();
}

std::optional<DecodedOp> decode_op(ByteSpan op) {
  Reader r(op);
  DecodedOp out;
  uint8_t tag = r.u8();
  if (tag < 1 || tag > 3) return std::nullopt;
  out.type = static_cast<OpType>(tag);
  out.key = r.bytes();
  if (out.type == OpType::kPut) out.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return out;
}

Digest KvService::leaf_for(ByteSpan key, ByteSpan value) {
  Writer w;
  w.bytes(key);
  w.bytes(value);
  return merkle::leaf_hash(as_span(w.data()));
}

void KvService::put(ByteSpan key, ByteSpan value) {
  data_[to_bytes(key)] = to_bytes(value);
  tree_.update(key, leaf_for(key, value));
}

void KvService::erase(ByteSpan key) {
  data_.erase(to_bytes(key));
  tree_.update(key, Digest{});
}

std::optional<Bytes> KvService::get(ByteSpan key) const {
  auto it = data_.find(to_bytes(key));
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

Bytes KvService::execute(ByteSpan op) {
  last_op_count_ = 1;
  if (!op.empty() && op[0] == static_cast<uint8_t>(OpType::kBatch)) {
    Reader r(op.subspan(1));
    uint32_t count = r.u32();
    if (count > 1'000'000) return to_bytes("ERR:malformed");
    Bytes last;
    for (uint32_t i = 0; i < count && r.ok(); ++i) {
      Bytes sub = r.bytes();
      last = execute(as_span(sub));
    }
    last_op_count_ = count == 0 ? 1 : count;
    return last;
  }
  auto decoded = decode_op(op);
  if (!decoded) return to_bytes("ERR:malformed");
  switch (decoded->type) {
    case OpType::kPut: {
      put(as_span(decoded->key), as_span(decoded->value));
      return to_bytes("OK");
    }
    case OpType::kGet: {
      auto v = get(as_span(decoded->key));
      return v ? *v : Bytes{};
    }
    case OpType::kDelete: {
      erase(as_span(decoded->key));
      return to_bytes("OK");
    }
    case OpType::kBatch:
      // Unreachable: batches are unpacked above and decode_op rejects the
      // batch tag, but the case keeps -Wswitch exhaustive.
      break;
  }
  return to_bytes("ERR:unknown");
}

Bytes KvService::query(ByteSpan q) const {
  auto decoded = decode_op(q);
  if (!decoded || decoded->type != OpType::kGet) return to_bytes("ERR:malformed");
  auto v = get(as_span(decoded->key));
  return v ? *v : Bytes{};
}

Bytes KvService::snapshot() const {
  uint32_t page = snapshot_page_ > 1 ? snapshot_page_ : 1;
  // Padding only pays off once the map spans several pages; below that emit
  // the compact unpadded layout (same sectioned format, page = 1). The gate
  // is a pure function of the state, so every replica picks the same layout.
  uint64_t total_payload = 0;
  for (const auto& [k, v] : data_) total_payload += 8 + k.size() + v.size();
  if (total_payload < 4ull * page) page = 1;
  // Section fanout G: a key closes its section when fnv(key) hits the G-mask,
  // so boundaries are a pure function of the key set — an insertion or
  // deletion reshapes only its own section, never the layout after it. G is
  // sized so the expected section payload is a couple of pad units, keeping
  // padding overhead small; the byte cap below only bounds pathological runs
  // without a boundary key (it re-synchronizes at the next boundary key).
  const uint64_t target = page > 1 ? 2ull * page : 8192;
  const uint64_t avg =
      data_.empty() ? 1
                    : std::max<uint64_t>(1, total_payload / data_.size());
  uint32_t fanout = 1;
  while (fanout < kMaxSectionFanout && fanout * avg < target) fanout <<= 1;

  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kPagedMagic),
                 sizeof(kPagedMagic)});
  w.u32(page);
  w.u64(data_.size());
  auto pad_to_page = [&w, page] {
    if (page > 1) {
      while (w.size() % page != 0) w.u8(0);
    }
  };
  pad_to_page();  // sections start page-aligned

  Writer section;
  uint32_t count = 0;
  uint64_t section_payload = 0;
  auto flush = [&] {
    if (count == 0) return;
    w.u32(count);
    w.raw(as_span(section.data()));
    pad_to_page();
    section = Writer();
    count = 0;
    section_payload = 0;
  };
  for (const auto& [k, v] : data_) {
    section.bytes(as_span(k));
    section.bytes(as_span(v));
    ++count;
    section_payload += 8 + k.size() + v.size();
    if ((fnv1a(as_span(k)) & (fanout - 1)) == 0 ||
        section_payload >= 8 * target) {
      flush();
    }
  }
  flush();
  return std::move(w).take();
}

bool KvService::restore(ByteSpan snapshot) {
  if (snapshot.size() >= sizeof(kPagedMagic) &&
      std::memcmp(snapshot.data(), kPagedMagic, sizeof(kPagedMagic)) == 0) {
    return restore_paged(snapshot);
  }
  return restore_flat(snapshot);
}

bool KvService::restore_flat(ByteSpan snapshot) {
  Reader r(snapshot);
  uint64_t count = r.u64();
  std::map<Bytes, Bytes> data;
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    Bytes k = r.bytes();
    Bytes v = r.bytes();
    data[std::move(k)] = std::move(v);
  }
  if (!r.at_end()) return false;
  data_.clear();
  tree_ = merkle::SparseMerkleTree();
  for (const auto& [k, v] : data) put(as_span(k), as_span(v));
  return true;
}

bool KvService::restore_paged(ByteSpan snapshot) {
  Reader r(snapshot);
  r.skip(sizeof(kPagedMagic));
  uint32_t page = r.u32();
  uint64_t entry_count = r.u64();
  if (!r.ok() || page > kMaxPage) return false;
  auto skip_pad = [&] {
    if (page > 1 && r.pos() % page != 0) r.skip(page - r.pos() % page);
  };
  skip_pad();
  std::map<Bytes, Bytes> data;
  uint64_t parsed = 0;
  while (parsed < entry_count && r.ok()) {
    uint32_t n = r.u32();
    if (n == 0 || n > entry_count - parsed) return false;
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      Bytes k = r.bytes();
      Bytes v = r.bytes();
      data[std::move(k)] = std::move(v);
    }
    parsed += n;
    skip_pad();
  }
  if (!r.at_end() || parsed != entry_count || data.size() != entry_count) {
    return false;
  }
  data_.clear();
  tree_ = merkle::SparseMerkleTree();
  for (const auto& [k, v] : data) put(as_span(k), as_span(v));
  return true;
}

std::unique_ptr<IService> KvService::clone_empty() const {
  return std::make_unique<KvService>();
}

bool KvService::verify(const Digest& root, ByteSpan key,
                       const std::optional<Bytes>& value,
                       const merkle::SmtProof& proof) {
  std::optional<Digest> leaf;
  if (value) leaf = leaf_for(key, as_span(*value));
  return merkle::SparseMerkleTree::verify(root, key, leaf, proof);
}

}  // namespace sbft::kv
