#include "kv/kv_service.h"

#include "common/serde.h"

namespace sbft::kv {

Bytes encode_put(ByteSpan key, ByteSpan value) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kPut));
  w.bytes(key);
  w.bytes(value);
  return std::move(w).take();
}

Bytes encode_get(ByteSpan key) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kGet));
  w.bytes(key);
  return std::move(w).take();
}

Bytes encode_delete(ByteSpan key) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kDelete));
  w.bytes(key);
  return std::move(w).take();
}

Bytes encode_batch(const std::vector<Bytes>& ops) {
  Writer w;
  w.u8(static_cast<uint8_t>(OpType::kBatch));
  w.u32(static_cast<uint32_t>(ops.size()));
  for (const Bytes& op : ops) w.bytes(as_span(op));
  return std::move(w).take();
}

std::optional<DecodedOp> decode_op(ByteSpan op) {
  Reader r(op);
  DecodedOp out;
  uint8_t tag = r.u8();
  if (tag < 1 || tag > 3) return std::nullopt;
  out.type = static_cast<OpType>(tag);
  out.key = r.bytes();
  if (out.type == OpType::kPut) out.value = r.bytes();
  if (!r.at_end()) return std::nullopt;
  return out;
}

Digest KvService::leaf_for(ByteSpan key, ByteSpan value) {
  Writer w;
  w.bytes(key);
  w.bytes(value);
  return merkle::leaf_hash(as_span(w.data()));
}

void KvService::put(ByteSpan key, ByteSpan value) {
  data_[to_bytes(key)] = to_bytes(value);
  tree_.update(key, leaf_for(key, value));
}

void KvService::erase(ByteSpan key) {
  data_.erase(to_bytes(key));
  tree_.update(key, Digest{});
}

std::optional<Bytes> KvService::get(ByteSpan key) const {
  auto it = data_.find(to_bytes(key));
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

Bytes KvService::execute(ByteSpan op) {
  last_op_count_ = 1;
  if (!op.empty() && op[0] == static_cast<uint8_t>(OpType::kBatch)) {
    Reader r(op.subspan(1));
    uint32_t count = r.u32();
    if (count > 1'000'000) return to_bytes("ERR:malformed");
    Bytes last;
    for (uint32_t i = 0; i < count && r.ok(); ++i) {
      Bytes sub = r.bytes();
      last = execute(as_span(sub));
    }
    last_op_count_ = count == 0 ? 1 : count;
    return last;
  }
  auto decoded = decode_op(op);
  if (!decoded) return to_bytes("ERR:malformed");
  switch (decoded->type) {
    case OpType::kPut: {
      put(as_span(decoded->key), as_span(decoded->value));
      return to_bytes("OK");
    }
    case OpType::kGet: {
      auto v = get(as_span(decoded->key));
      return v ? *v : Bytes{};
    }
    case OpType::kDelete: {
      erase(as_span(decoded->key));
      return to_bytes("OK");
    }
  }
  return to_bytes("ERR:unknown");
}

Bytes KvService::query(ByteSpan q) const {
  auto decoded = decode_op(q);
  if (!decoded || decoded->type != OpType::kGet) return to_bytes("ERR:malformed");
  auto v = get(as_span(decoded->key));
  return v ? *v : Bytes{};
}

Bytes KvService::snapshot() const {
  Writer w;
  w.u64(data_.size());
  for (const auto& [k, v] : data_) {
    w.bytes(as_span(k));
    w.bytes(as_span(v));
  }
  return std::move(w).take();
}

bool KvService::restore(ByteSpan snapshot) {
  Reader r(snapshot);
  uint64_t count = r.u64();
  std::map<Bytes, Bytes> data;
  for (uint64_t i = 0; i < count && r.ok(); ++i) {
    Bytes k = r.bytes();
    Bytes v = r.bytes();
    data[std::move(k)] = std::move(v);
  }
  if (!r.at_end()) return false;
  data_.clear();
  tree_ = merkle::SparseMerkleTree();
  for (const auto& [k, v] : data) put(as_span(k), as_span(v));
  return true;
}

std::unique_ptr<IService> KvService::clone_empty() const {
  return std::make_unique<KvService>();
}

bool KvService::verify(const Digest& root, ByteSpan key,
                       const std::optional<Bytes>& value,
                       const merkle::SmtProof& proof) {
  std::optional<Digest> leaf;
  if (value) leaf = leaf_for(key, as_span(*value));
  return merkle::SparseMerkleTree::verify(root, key, leaf, proof);
}

}  // namespace sbft::kv
