// Generic replicated-service interface (§IV "Generic service").
//
// SBFT replicates any deterministic service that implements this interface;
// the repository ships two implementations: the authenticated key-value store
// (src/kv/kv_service.h) and the EVM smart-contract ledger built on top of it
// (src/evm/evm_service.h).
#pragma once

#include <memory>

#include "common/bytes.h"
#include "sim/cost_model.h"

namespace sbft {

class IService {
 public:
  virtual ~IService() = default;

  /// Executes operation `op`, mutating the state; returns the output value.
  /// Must be deterministic: equal states and equal ops yield equal outputs
  /// and equal successor states on every replica.
  virtual Bytes execute(ByteSpan op) = 0;

  /// Read-only query against the current state.
  virtual Bytes query(ByteSpan q) const = 0;

  /// Merkle digest of the current state (the `digest(D)` of §IV).
  virtual Digest state_digest() const = 0;

  /// Full-state snapshot for checkpointing / state transfer, and its inverse.
  /// restore() returns false if the snapshot is malformed.
  virtual Bytes snapshot() const = 0;
  virtual bool restore(ByteSpan snapshot) = 0;

  /// Chunk-stability hint: state transfer splits snapshots into fixed-size
  /// chunks of `page` bytes, and a serializer that aligns its sections to
  /// multiples of `page` keeps unmutated regions chunk-for-chunk identical
  /// across consecutive checkpoints (the property delta state transfer
  /// exploits — docs/state_transfer.md). 0 or 1 disables padding. Services
  /// may ignore the hint; the hint never affects state_digest(), only the
  /// snapshot byte layout, and must be identical on every replica (it is set
  /// from the cluster-uniform ProtocolConfig::state_transfer_chunk_size).
  virtual void set_snapshot_chunk_hint(uint32_t /*page*/) {}

  /// Fresh service instance of the same kind with empty state (used when a
  /// replica instantiates the service for state transfer).
  virtual std::unique_ptr<IService> clone_empty() const = 0;

  /// Simulated CPU cost of the most recent execute() call, so replicas can
  /// charge realistic execution time (KV ops vs EVM gas differ by orders of
  /// magnitude).
  virtual int64_t last_execute_cost_us(const sim::CostModel& costs) const {
    return costs.kv_op_us;
  }
};

}  // namespace sbft
